// WriteFileDurable / DurableAppendFile contracts (src/util/atomic_file):
// whole-file replace is all-or-nothing and leaves no temp droppings behind,
// failures are reported (never thrown) with an errno-tagged reason and never
// leave a partial file, and the append log persists every record and reopens
// in append mode for resume.

#include "src/util/atomic_file.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace dibs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dibs_atomic_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (const std::string& name : Entries()) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::vector<std::string> Entries() const {
    std::vector<std::string> names;
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) {
      return names;
    }
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        names.push_back(name);
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string dir_;
};

TEST_F(AtomicFileTest, WriteCreatesExactContents) {
  const std::string path = dir_ + "/a.txt";
  EXPECT_TRUE(WriteFileDurable(path, "hello\nworld\n"));
  EXPECT_EQ(ReadAll(path), "hello\nworld\n");
}

TEST_F(AtomicFileTest, WriteReplacesExistingWhole) {
  const std::string path = dir_ + "/a.txt";
  ASSERT_TRUE(WriteFileDurable(path, "a much longer first version\n"));
  ASSERT_TRUE(WriteFileDurable(path, "v2\n"));
  // Shorter replacement must not leave a tail of the old content behind.
  EXPECT_EQ(ReadAll(path), "v2\n");
}

TEST_F(AtomicFileTest, NoTempFilesSurviveASuccessfulWrite) {
  ASSERT_TRUE(WriteFileDurable(dir_ + "/a.txt", "x"));
  ASSERT_TRUE(WriteFileDurable(dir_ + "/a.txt", "y"));
  EXPECT_EQ(Entries(), std::vector<std::string>{"a.txt"});
}

TEST_F(AtomicFileTest, MissingDirectoryReportsErrorWithoutThrowing) {
  std::string error;
  EXPECT_FALSE(WriteFileDurable(dir_ + "/no/such/dir/a.txt", "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(Entries(), std::vector<std::string>{});
}

TEST_F(AtomicFileTest, EmptyContentsAreValid) {
  const std::string path = dir_ + "/empty";
  ASSERT_TRUE(WriteFileDurable(path, "a"));
  ASSERT_TRUE(WriteFileDurable(path, ""));
  EXPECT_EQ(ReadAll(path), "");
}

TEST_F(AtomicFileTest, AppendPersistsAcrossReopen) {
  const std::string path = dir_ + "/log";
  {
    DurableAppendFile f;
    ASSERT_TRUE(f.Open(path, /*truncate=*/true));
    ASSERT_TRUE(f.Append("one\n"));
    ASSERT_TRUE(f.Append("two\n"));
  }
  {
    DurableAppendFile f;
    ASSERT_TRUE(f.Open(path, /*truncate=*/false));
    ASSERT_TRUE(f.Append("three\n"));
  }
  EXPECT_EQ(ReadAll(path), "one\ntwo\nthree\n");
}

TEST_F(AtomicFileTest, TruncatingOpenStartsFresh) {
  const std::string path = dir_ + "/log";
  {
    DurableAppendFile f;
    ASSERT_TRUE(f.Open(path, /*truncate=*/true));
    ASSERT_TRUE(f.Append("stale\n"));
  }
  DurableAppendFile f;
  ASSERT_TRUE(f.Open(path, /*truncate=*/true));
  ASSERT_TRUE(f.Append("fresh\n"));
  EXPECT_EQ(ReadAll(path), "fresh\n");
}

TEST_F(AtomicFileTest, AppendWithoutOpenFails) {
  DurableAppendFile f;
  std::string error;
  EXPECT_FALSE(f.is_open());
  EXPECT_FALSE(f.Append("x", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dibs
