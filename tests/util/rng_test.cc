#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dibs {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyCorrectMean) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto picks = rng.SampleWithoutReplacement(50, 20);
    ASSERT_EQ(picks.size(), 20u);
    std::set<int> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 20u);
    for (int v : picks) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(17);
  auto picks = rng.SampleWithoutReplacement(5, 5);
  std::sort(picks.begin(), picks.end());
  EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(19);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

}  // namespace
}  // namespace dibs
