#include "src/util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace dibs {
namespace {

// RAII env variable for the duration of one test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

constexpr char kKnob[] = "DIBS_ENV_TEST_KNOB";

TEST(EnvTest, UnsetAndEmptyYieldFallback) {
  ScopedEnv unset(kKnob, nullptr);
  EXPECT_FALSE(env::IsSet(kKnob));
  EXPECT_EQ(env::Raw(kKnob), nullptr);
  EXPECT_EQ(env::Int(kKnob, 7, 0, 100), 7);
  EXPECT_EQ(env::Double(kKnob, 0.5, 0, 1), 0.5);
  EXPECT_TRUE(env::Flag(kKnob, true));
  EXPECT_EQ(env::OneOf(kKnob, "thread", {"thread", "process"}), "thread");

  ScopedEnv empty(kKnob, "");
  EXPECT_FALSE(env::IsSet(kKnob));
  EXPECT_EQ(env::Int(kKnob, 7, 0, 100), 7);
}

TEST(EnvTest, IntParsesSignedDecimal) {
  ScopedEnv e(kKnob, "42");
  EXPECT_EQ(env::Int(kKnob, 0, 0, 100), 42);
  ScopedEnv neg(kKnob, "-3");
  EXPECT_EQ(env::Int(kKnob, 0, -10, 10), -3);
  ScopedEnv plus(kKnob, "+9");
  EXPECT_EQ(env::Int(kKnob, 0, 0, 10), 9);
}

TEST(EnvTest, IntRejectsGarbage) {
  for (const char* bad : {"fuor", "12x", "1.5", "0x10", " 3", "3 ", "-", "+",
                          "1e3", "99999999999999999999999999"}) {
    ScopedEnv e(kKnob, bad);
    EXPECT_THROW(env::Int(kKnob, 0, 0, 100), EnvError) << "value: " << bad;
  }
}

TEST(EnvTest, IntEnforcesRange) {
  ScopedEnv lo(kKnob, "-1");
  EXPECT_THROW(env::Int(kKnob, 0, 0, 100), EnvError);
  ScopedEnv hi(kKnob, "101");
  EXPECT_THROW(env::Int(kKnob, 0, 0, 100), EnvError);
  ScopedEnv edge(kKnob, "100");
  EXPECT_EQ(env::Int(kKnob, 0, 0, 100), 100);
}

TEST(EnvTest, ErrorCarriesNameAndValue) {
  ScopedEnv e(kKnob, "fuor");
  try {
    env::Int(kKnob, 0, 0, 100);
    FAIL() << "expected EnvError";
  } catch (const EnvError& err) {
    EXPECT_EQ(err.name(), kKnob);
    EXPECT_EQ(err.value(), "fuor");
    EXPECT_NE(std::string(err.what()).find(kKnob), std::string::npos);
  }
}

TEST(EnvTest, DoubleParsesAndBounds) {
  ScopedEnv e(kKnob, "0.25");
  EXPECT_DOUBLE_EQ(env::Double(kKnob, 0, 0, 1), 0.25);
  ScopedEnv sci(kKnob, "2.5e-1");
  EXPECT_DOUBLE_EQ(env::Double(kKnob, 0, 0, 1), 0.25);
  ScopedEnv hi(kKnob, "1.5");
  EXPECT_THROW(env::Double(kKnob, 0, 0, 1), EnvError);
}

TEST(EnvTest, DoubleRejectsNonFiniteAndGarbage) {
  for (const char* bad : {"nan", "inf", "-inf", "abc", "1.0x", ""}) {
    ScopedEnv e(kKnob, bad);
    if (bad[0] == '\0') {
      EXPECT_DOUBLE_EQ(env::Double(kKnob, 0.5, 0, 1), 0.5);  // empty = unset
    } else {
      EXPECT_THROW(env::Double(kKnob, 0, 0, 1), EnvError) << "value: " << bad;
    }
  }
}

TEST(EnvTest, FlagAcceptsCanonicalSpellings) {
  for (const char* yes : {"1", "true", "TRUE", "on", "yes"}) {
    ScopedEnv e(kKnob, yes);
    EXPECT_TRUE(env::Flag(kKnob, false)) << "value: " << yes;
  }
  for (const char* no : {"0", "false", "off", "NO"}) {
    ScopedEnv e(kKnob, no);
    EXPECT_FALSE(env::Flag(kKnob, true)) << "value: " << no;
  }
}

TEST(EnvTest, FlagRejectsTypos) {
  for (const char* bad : {"treu", "2", "y", "enable"}) {
    ScopedEnv e(kKnob, bad);
    EXPECT_THROW(env::Flag(kKnob, false), EnvError) << "value: " << bad;
  }
}

TEST(EnvTest, OneOfMatchesExactlyOrThrows) {
  ScopedEnv e(kKnob, "process");
  EXPECT_EQ(env::OneOf(kKnob, "thread", {"thread", "process"}), "process");
  ScopedEnv bad(kKnob, "Process");
  EXPECT_THROW(env::OneOf(kKnob, "thread", {"thread", "process"}), EnvError);
}

}  // namespace
}  // namespace dibs
