#include "src/util/stats_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dibs {
namespace {

TEST(PercentileTest, EmptyInputReturnsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_EQ(Percentile({}, 99), 0.0);
}

TEST(PercentileTest, SingleValue) {
  EXPECT_EQ(Percentile({42.0}, 0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 50), 42.0);
  EXPECT_EQ(Percentile({42.0}, 100), 42.0);
}

TEST(PercentileTest, MedianOfTwoInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0}, 50), 15.0);
}

TEST(PercentileTest, ExtremesAreMinAndMax) {
  std::vector<double> v{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 9.0);
}

TEST(PercentileTest, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(Percentile({9, 1, 5, 3, 7}, 50), 5.0);
}

TEST(PercentileTest, NinetyNinthOfUniformRamp) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(i);
  }
  const double p99 = Percentile(v, 99);
  EXPECT_GE(p99, 99.0);
  EXPECT_LE(p99, 100.0);
}

TEST(PercentileTest, MonotoneInP) {
  std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  double prev = -1;
  for (double p = 0; p <= 100; p += 5) {
    const double value = Percentile(v, p);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
}

TEST(StdDevTest, ZeroForConstant) {
  EXPECT_DOUBLE_EQ(StdDev({5, 5, 5, 5}), 0.0);
}

TEST(StdDevTest, KnownSample) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is 2.138...
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
}

TEST(JainTest, PerfectFairness) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1, 1, 1, 1}), 1.0);
}

TEST(JainTest, WorstCaseIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1, 0, 0, 0}), 0.25);
}

TEST(JainTest, DegenerateInputsAreFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(JainTest, BoundedByOne) {
  EXPECT_LE(JainFairnessIndex({1, 2, 3, 4, 5}), 1.0);
  EXPECT_GT(JainFairnessIndex({1, 2, 3, 4, 5}), 0.0);
}

TEST(SummarizeTest, AllFieldsPopulated) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) {
    v.push_back(i);
  }
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p99, 990, 1.5);
  EXPECT_GT(s.p999, s.p99);
}

TEST(SummarizeTest, EmptyIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(EmpiricalCdfPointsTest, LastPointIsMaxAtOne) {
  const auto cdf = EmpiricalCdfPoints({3, 1, 2}, 10);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().first, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(EmpiricalCdfPointsTest, FractionsNonDecreasing) {
  std::vector<double> v;
  for (int i = 0; i < 57; ++i) {
    v.push_back(i * 3 % 17);
  }
  const auto cdf = EmpiricalCdfPoints(v, 20);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(EmpiricalCdfPointsTest, EmptyInput) {
  EXPECT_TRUE(EmpiricalCdfPoints({}, 10).empty());
}

}  // namespace
}  // namespace dibs
