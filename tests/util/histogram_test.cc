#include "src/util/histogram.h"

#include <gtest/gtest.h>

namespace dibs {
namespace {

TEST(HistogramTest, CountsLandInRightBuckets) {
  Histogram h(1.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.9);
  h.Add(9.5);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h(1.0, 4);
  h.Add(100.0);
  h.Add(4.0);  // exactly at the boundary -> overflow
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBucket) {
  Histogram h(1.0, 4);
  h.Add(-3.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(10.0, 4);
  h.Add(5.0, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket_count(0), 7u);
}

TEST(HistogramTest, CumulativeFraction) {
  Histogram h(1.0, 4);
  for (int i = 0; i < 4; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(1), 0.50);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(3), 1.0);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  // 99% of samples are below ~99.
  EXPECT_NEAR(h.ApproxQuantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.5), 50.0, 1.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(1.0, 4);
  EXPECT_EQ(h.ApproxQuantile(0.99), 0.0);
  EXPECT_EQ(h.CumulativeFraction(3), 0.0);
}

}  // namespace
}  // namespace dibs
