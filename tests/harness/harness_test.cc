// Harness-layer tests: scheme presets encode Table 1/2 correctly, the table
// printer formats stably, and ScenarioResult fields are internally coherent.

#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/harness/table.h"

namespace dibs {
namespace {

TEST(ConfigPresetTest, DctcpPreset) {
  const ExperimentConfig c = DctcpConfig();
  EXPECT_EQ(c.net.detour_policy, "none");
  EXPECT_EQ(c.net.switch_buffer_packets, 100u);  // Table 1
  EXPECT_EQ(c.net.ecn_threshold_packets, 20u);   // §5.3 marking threshold
  EXPECT_EQ(c.tcp.init_cwnd_segments, 10u);      // Table 1
  EXPECT_EQ(c.tcp.min_rto, Time::Millis(10));    // Table 1
  EXPECT_EQ(c.tcp.dupack_threshold, 3u);         // fast retransmit on
  EXPECT_EQ(c.transport, TransportKind::kDctcp);
  EXPECT_EQ(c.fat_tree_k, 8);                    // 128 hosts
  EXPECT_EQ(c.qps, 300);                         // Table 2 bold defaults
  EXPECT_EQ(c.incast_degree, 40);
  EXPECT_EQ(c.response_bytes, 20000u);
  EXPECT_EQ(c.bg_interarrival, Time::Millis(120));
}

TEST(ConfigPresetTest, DibsPreset) {
  const ExperimentConfig c = DibsConfig();
  EXPECT_EQ(c.net.detour_policy, "random");
  EXPECT_EQ(c.tcp.dupack_threshold, 0u);  // §4: fast retransmit disabled
  EXPECT_EQ(c.net.initial_ttl, 255);
}

TEST(ConfigPresetTest, DibsGuardPreset) {
  const ExperimentConfig c = DibsGuardConfig();
  EXPECT_EQ(c.label, "DCTCP+DIBS+guard");
  EXPECT_EQ(c.net.detour_policy, "random");  // still DIBS underneath
  EXPECT_TRUE(c.net.guard.enabled);
  EXPECT_TRUE(c.net.guard.adaptive_ttl);
  EXPECT_TRUE(c.net.guard.watchdog);
  // The hysteresis invariant GuardFabric checks at construction.
  EXPECT_LT(c.net.guard.rearm_detour_rate, c.net.guard.trip_detour_rate);
}

TEST(ConfigPresetTest, InfiniteBufferPreset) {
  const ExperimentConfig c = InfiniteBufferConfig();
  EXPECT_EQ(c.net.switch_buffer_packets, 0u);
  EXPECT_EQ(c.net.detour_policy, "none");
}

TEST(ConfigPresetTest, PfabricPreset) {
  const ExperimentConfig c = PfabricExperimentConfig();
  EXPECT_TRUE(c.net.pfabric_queues);
  EXPECT_EQ(c.net.pfabric_buffer_packets, 24u);  // §5.8
  EXPECT_EQ(c.transport, TransportKind::kPfabric);
  EXPECT_EQ(c.pfabric.rto, Time::Micros(350));   // §5.8 for 1Gbps
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

TEST(TablePrinterTest, RowsAlignToHeaders) {
  TablePrinter t({"a", "long_header", "b"});
  std::ostringstream os;
  t.PrintHeader(os);
  t.PrintRow({"1", "2", "3"}, os);
  std::istringstream is(os.str());
  std::string header;
  std::string sep;
  std::string row;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(sep.size(), header.size());
}

TEST(TablePrinterTest, ExplicitWidthsRespected) {
  TablePrinter t({"x"}, {20});
  std::ostringstream os;
  t.PrintRow({"v"}, os);
  EXPECT_EQ(os.str().size(), 21u);  // 20 + newline
}

TEST(FigureBannerTest, ContainsIdAndCaption) {
  std::ostringstream os;
  PrintFigureBanner("Figure 9", "Query rate", "params here", os);
  EXPECT_NE(os.str().find("Figure 9"), std::string::npos);
  EXPECT_NE(os.str().find("Query rate"), std::string::npos);
  EXPECT_NE(os.str().find("params here"), std::string::npos);
}

TEST(DropBreakdownTest, GuardReasonsAlwaysShownEvenAtZero) {
  // A guarded run that never tripped must be visibly distinct from an
  // unguarded run: the two guard reasons print at zero, like ttl-expired.
  const std::string s = FormatDropBreakdown(std::vector<uint64_t>(kNumDropReasons, 0));
  EXPECT_NE(s.find("ttl-expired=0"), std::string::npos) << s;
  EXPECT_NE(s.find("guard-suppressed=0"), std::string::npos) << s;
  EXPECT_NE(s.find("guard-ttl-clamped=0"), std::string::npos) << s;
  // Other zero reasons stay hidden to keep the line short.
  EXPECT_EQ(s.find("queue-overflow"), std::string::npos) << s;
  EXPECT_EQ(s.find("no-eligible-detour"), std::string::npos) << s;
}

TEST(DropBreakdownTest, NonZeroReasonsAppearInReasonOrder) {
  std::vector<uint64_t> drops(kNumDropReasons, 0);
  drops[static_cast<size_t>(DropReason::kQueueOverflow)] = 12;
  drops[static_cast<size_t>(DropReason::kNoEligibleDetour)] = 3;
  const std::string s = FormatDropBreakdown(drops);
  const size_t overflow = s.find("queue-overflow=12");
  const size_t storm = s.find("no-eligible-detour=3");
  ASSERT_NE(overflow, std::string::npos) << s;
  ASSERT_NE(storm, std::string::npos) << s;
  EXPECT_LT(overflow, storm);
}

TEST(ScenarioResultTest, FieldsAreCoherent) {
  ExperimentConfig c = DibsConfig();
  c.fat_tree_k = 4;
  c.incast_degree = 8;
  c.qps = 300;
  c.duration = Time::Millis(200);
  c.seed = 5;
  Scenario scenario(c);
  const ScenarioResult r = scenario.Run();

  EXPECT_LE(r.queries_completed, r.queries_launched);
  EXPECT_LE(r.flows_completed, r.flows_started);
  EXPECT_GT(r.events_processed, 0u);
  EXPECT_EQ(r.qct.count, r.queries_completed);
  EXPECT_GE(r.qct99_ms, r.qct.p50);
  EXPECT_GE(r.bg_fct99_all_ms, 0.0);
  EXPECT_GE(r.detoured_fraction, 0.0);
  EXPECT_LE(r.detoured_fraction, 1.0);
  if (r.detours > 0) {
    EXPECT_GE(r.query_detour_share, 0.0);
    EXPECT_LE(r.query_detour_share, 1.0);
  }
  // Flow accounting: every completed query accounts for `degree` flows.
  EXPECT_GE(r.flows_completed, r.queries_completed * 8);
}

TEST(ScenarioResultTest, QueryDetourShareIsHighUnderIncast) {
  // §5.4.1: "over 90% of detoured packets belong to query traffic".
  ExperimentConfig c = DibsConfig();
  c.duration = Time::Millis(200);
  c.seed = 3;
  const ScenarioResult r = RunScenario(c);
  ASSERT_GT(r.detours, 0u);
  // Our per-host background is heavier than the paper's, so slightly more
  // background packets ride through hot spots; the share stays dominant.
  EXPECT_GT(r.query_detour_share, 0.8);
}

TEST(ScenarioResultTest, DetouredFractionModestAtDefaults) {
  // §5.4.1: "on average, DIBS detours less than 20% of the packets".
  ExperimentConfig c = DibsConfig();
  c.duration = Time::Millis(200);
  c.seed = 3;
  const ScenarioResult r = RunScenario(c);
  EXPECT_LT(r.detoured_fraction, 0.25);
}

}  // namespace
}  // namespace dibs
