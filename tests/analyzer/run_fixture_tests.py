#!/usr/bin/env python3
"""End-to-end fixture tests for dibs-analyzer through the real libclang
frontend.

For every fixtures/*.cc a synthetic compile_commands.json entry is generated
and the full driver pipeline runs (parse -> lower -> rules -> lint:allow ->
baseline). Assertions:

  *_bad.cc   every line marked `// expect(<rule>)` yields >= 1 finding of
             that rule, and every finding sits on a marked line (no
             false positives inside the fixture either);
  *_good.cc  zero findings — and every `lint:allow(<rule>)` line shows up in
             the suppressed_allow report, proving the rule FIRED and was
             escaped (silence-by-brokenness would fail this);
  baseline   --update-baseline followed by a re-run against the fresh
             baseline reports zero new findings and exits 0.

Exits 77 (ctest SKIP_RETURN_CODE) when libclang is unavailable — this is the
CI-only deep end; tests/analyzer/test_kernels.py covers the rule kernels
everywhere. `g++ -fsyntax-only` validation of the fixtures themselves is a
separate ctest (analyzer_fixture_syntax) that always runs.
"""

import glob
import json
import os
import re
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")
sys.path.insert(0, os.path.join(REPO, "tools"))

from analyzer import dibs_analyzer  # noqa: E402
from analyzer import frontend  # noqa: E402
from analyzer import source_text  # noqa: E402

EXPECT_RE = re.compile(r"//\s*expect\((\w[\w-]*)\)")

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print("%s: %s" % (tag, what))
    if not cond:
        failures.append(what)


def expectations(path):
    """dict[rule -> set of 1-based lines marked `// expect(rule)`]."""
    exp = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for m in EXPECT_RE.finditer(line):
                exp.setdefault(m.group(1), set()).add(lineno)
    return exp


def allow_lines(path):
    """dict[rule -> set of lines carrying lint:allow(rule)]."""
    sc = source_text.scan_file(path)
    out = {}
    for lineno, rules in sc.allows.items():
        for rule in rules:
            out.setdefault(rule, set()).add(lineno)
    return out


def run_driver(ccpath, baseline, json_out, update=False):
    argv = ["--compile-commands", ccpath, "--root", FIXTURES,
            "--baseline", baseline, "--quiet", "."]
    if json_out:
        argv += ["--json", json_out]
    if update:
        argv += ["--update-baseline"]
    return dibs_analyzer.main(argv)


def main():
    cindex, reason = frontend.load_libclang()
    if cindex is None:
        print("SKIP: %s" % reason)
        return 77

    fixtures = sorted(glob.glob(os.path.join(FIXTURES, "*.cc")))
    check(len(fixtures) == 12, "found all 12 fixtures (got %d)" % len(fixtures))

    with tempfile.TemporaryDirectory(prefix="dibs-analyzer-test.") as td:
        ccpath = os.path.join(td, "compile_commands.json")
        with open(ccpath, "w", encoding="utf-8") as f:
            json.dump([
                {"directory": td, "file": src,
                 "arguments": ["g++", "-std=c++20", "-c", src]}
                for src in fixtures
            ], f, indent=2)

        empty_baseline = os.path.join(td, "empty_baseline.json")
        with open(empty_baseline, "w", encoding="utf-8") as f:
            json.dump({"version": 1, "findings": []}, f)

        report_path = os.path.join(td, "report.json")
        rc = run_driver(ccpath, empty_baseline, report_path)
        check(rc == 1, "driver exits 1 on the bad fixtures (got %d)" % rc)
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
        check(report["files_analyzed"] == len(fixtures),
              "all %d fixtures analyzed" % len(fixtures))

        by_file = {}
        for f_ in report["findings"]:
            by_file.setdefault(f_["file"], []).append(f_)
        allowed_by_file = {}
        for f_ in report["suppressed_allow"]:
            allowed_by_file.setdefault(f_["file"], []).append(f_)

        for src in fixtures:
            rel = os.path.basename(src)
            findings = by_file.get(rel, [])
            if rel.endswith("_bad.cc"):
                exp = expectations(src)
                check(exp, "%s declares expect() markers" % rel)
                for rule, lines in sorted(exp.items()):
                    for line in sorted(lines):
                        hit = any(f_["rule"] == rule and f_["line"] == line
                                  for f_ in findings)
                        check(hit, "%s:%d fires [%s]" % (rel, line, rule))
                for f_ in findings:
                    ok = f_["line"] in exp.get(f_["rule"], set())
                    check(ok, "%s:%d [%s] is on an expected line"
                          % (rel, f_["line"], f_["rule"]))
            else:
                check(not findings,
                      "%s is clean (got %s)" % (rel, [
                          (f_["rule"], f_["line"]) for f_ in findings]))
                for rule, lines in sorted(allow_lines(src).items()):
                    for line in sorted(lines):
                        hit = any(a["rule"] == rule and a["line"] == line
                                  for a in allowed_by_file.get(rel, []))
                        check(hit, "%s:%d lint:allow(%s) suppressed a live "
                              "finding" % (rel, line, rule))

        # Baseline round trip: grandfather everything, then re-run clean.
        bl2 = os.path.join(td, "grandfathered.json")
        rc = run_driver(ccpath, bl2, None, update=True)
        check(rc == 0, "--update-baseline exits 0")
        report2_path = os.path.join(td, "report2.json")
        rc = run_driver(ccpath, bl2, report2_path)
        check(rc == 0, "re-run against fresh baseline exits 0 (got %d)" % rc)
        with open(report2_path, encoding="utf-8") as f:
            report2 = json.load(f)
        check(not report2["findings"], "no new findings after baselining")
        check(len(report2["suppressed_baseline"]) == len(report["findings"]),
              "every original finding matched a baseline entry (%d vs %d)"
              % (len(report2["suppressed_baseline"]),
                 len(report["findings"])))

    if failures:
        print("\n%d assertion(s) failed" % len(failures))
        return 1
    print("\nall fixture assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
