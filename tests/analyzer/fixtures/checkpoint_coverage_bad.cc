// dibs-analyzer fixture: every marked line must fire [checkpoint-coverage].
// Minimal mirrors of the dibs:: simulator and checkpoint base — the rule
// keys on qualified names, so these stand in for the real ones.

namespace dibs {

class Simulator {
 public:
  void Schedule(double delay) { last_ = delay; }
  void ScheduleAt(double when) { last_ = when; }
  void RestoreEventAt(double when, unsigned long id) { last_ = when + id; }

 private:
  double last_ = 0;
};

namespace ckpt {
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
};
}  // namespace ckpt

}  // namespace dibs

namespace fixture {

// Owns a timer but is invisible to the checkpoint layer: a snapshot taken
// while its event is live fails the coverage check and is refused.
class RogueTimer {
 public:
  explicit RogueTimer(dibs::Simulator& sim) : sim_(sim) {}
  void Start() {
    sim_.Schedule(1.0);  // expect(checkpoint-coverage)
  }
  void Rearm() {
    sim_.RestoreEventAt(2.0, 7);  // expect(checkpoint-coverage)
  }

 private:
  dibs::Simulator& sim_;
};

// Free functions can never be checkpoint-covered: nothing reports the event
// in CkptPendingEvents, nothing re-arms it on restore.
void FireAndForget(dibs::Simulator& sim) {
  sim.ScheduleAt(3.0);  // expect(checkpoint-coverage)
}

}  // namespace fixture
