// dibs-analyzer fixture: nothing here may fire [determinism-ast], except the
// one deliberately violating line below, which carries a lint:allow escape —
// the runner asserts it shows up as *suppressed*, proving the rule saw it.

#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

// A dibs::Rng-shaped deterministic generator: fine.
struct Rng {
  unsigned long long state;
  unsigned Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<unsigned>(state >> 33);
  }
};

double IterateOrdered(const std::map<int, double>& m) {
  double sum = 0;
  for (const auto& [key, value] : m) {  // ordered container: deterministic
    sum += value + key;
  }
  return sum;
}

double IterateVector(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) {
    sum += x;
  }
  return sum;
}

// Point lookups into unordered containers are fine — only iteration is
// order-sensitive.
double Lookup(const std::unordered_map<int, double>& t, int key) {
  auto it = t.find(key);
  return it == t.end() ? 0.0 : it->second;
}

std::size_t EscapeHatch(const std::unordered_map<int, double>& t) {
  std::size_t n = 0;
  for (const auto& kv : t) {  // lint:allow(determinism-ast)
    n += kv.first != 0 ? 1u : 0u;
  }
  return n;
}

}  // namespace fixture
