// dibs-analyzer fixture: every marked line must fire [observer-purity].
// Minimal mirrors of the dibs:: simulation-state and observer base classes —
// the rule keys on qualified names, so these stand in for the real ones.

namespace dibs {

class Simulator {
 public:
  double Now() const { return now_; }
  void Schedule(double delay) { last_ = delay; }
  void Cancel(int id) { last_ = id; }

 private:
  double now_ = 0;
  double last_ = 0;
};

class Network {
 public:
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  void Inject(int pkt) { injected_ = pkt; }
  int injected() const { return injected_; }

 private:
  Simulator sim_;
  int injected_ = 0;
};

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnDrop(int uid) { (void)uid; }
  virtual void OnEnqueue(int uid) { (void)uid; }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(int ev) { (void)ev; }
};

}  // namespace dibs

namespace fixture {

// Reached only from MeddlingObserver::OnEnqueue below: the finding lands at
// the mutating call site inside this repo-local helper.
void PokeNetwork(dibs::Network& net) {
  net.Inject(99);  // expect(observer-purity)
}

class MeddlingObserver : public dibs::NetworkObserver {
 public:
  explicit MeddlingObserver(dibs::Network& net) : net_(net) {
    net_.Inject(0);  // constructors are exempt: registration-time setup
  }
  void OnDrop(int uid) override {
    net_.sim().Schedule(1.0);  // expect(observer-purity)
    net_.Inject(uid);          // expect(observer-purity)
  }
  void OnEnqueue(int uid) override {
    (void)uid;
    PokeNetwork(net_);  // indirect: flagged inside PokeNetwork, not here
  }

 private:
  dibs::Network& net_;
};

class SchedulingSink : public dibs::TraceSink {
 public:
  explicit SchedulingSink(dibs::Simulator& sim) : sim_(sim) {}
  void OnEvent(int ev) override {
    (void)ev;
    sim_.Cancel(7);  // expect(observer-purity)
  }

 private:
  dibs::Simulator& sim_;
};

}  // namespace fixture
