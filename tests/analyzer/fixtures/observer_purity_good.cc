// dibs-analyzer fixture: nothing here may fire [observer-purity], except the
// one deliberately violating line below, suppressed by lint:allow — the
// runner asserts it shows up as *suppressed*, proving the rule saw it.

namespace dibs {

class Simulator {
 public:
  double Now() const { return now_; }
  void Schedule(double delay) { last_ = delay; }

 private:
  double now_ = 0;
  double last_ = 0;
};

class Network {
 public:
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  void Inject(int pkt) { injected_ = pkt; }
  int injected() const { return injected_; }

 private:
  Simulator sim_;
  int injected_ = 0;
};

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnDrop(int uid) { (void)uid; }
  virtual void OnEnqueue(int uid) { (void)uid; }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(int ev) { (void)ev; }
};

}  // namespace dibs

namespace fixture {

// Observers may read as much simulated state as they like — through const
// accessors — and mutate their OWN state freely.
class PassiveObserver : public dibs::NetworkObserver {
 public:
  explicit PassiveObserver(const dibs::Network& net) : net_(net) {}
  void OnDrop(int uid) override {
    drops_ += uid;
    last_now_ = net_.sim().Now();  // const sim() + const Now(): pure
  }
  void OnEnqueue(int uid) override {
    peak_ = uid > peak_ ? uid : peak_;
    if (injector_ != nullptr) {
      injector_->Inject(uid);  // lint:allow(observer-purity)
    }
  }

 private:
  const dibs::Network& net_;
  dibs::Network* injector_ = nullptr;
  long drops_ = 0;
  int peak_ = 0;
  double last_now_ = 0;
};

class CountingSink : public dibs::TraceSink {
 public:
  void OnEvent(int ev) override { count_ += ev; }
  long count() const { return count_; }

 private:
  long count_ = 0;
};

// Not an observer: drivers mutate the world by design, the rule must not
// follow calls that do not originate in observer code.
class Driver {
 public:
  void Step(dibs::Network& net) {
    net.Inject(1);
    net.sim().Schedule(0.5);
  }
};

}  // namespace fixture
