// dibs-analyzer fixture: every marked line must fire [pointer-key-order].
// Ordered associative containers keyed by pointers iterate in address order,
// which varies run to run — poison for bit-identical replay.

#include <cstdint>
#include <map>
#include <set>

namespace fixture {

struct Node {
  std::uint64_t id;
};

using PortMap = std::map<Node*, int>;  // alias: canonical key is still Node*

struct Registry {
  std::map<const Node*, double> weights;  // expect(pointer-key-order)
  PortMap ports;                          // expect(pointer-key-order)
};

int CountLocal() {
  std::set<const Node*> seen;  // expect(pointer-key-order)
  return static_cast<int>(seen.size());
}

std::multiset<Node*> g_pending;  // expect(pointer-key-order)

}  // namespace fixture
