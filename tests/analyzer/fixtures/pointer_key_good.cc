// dibs-analyzer fixture: nothing here may fire [pointer-key-order], except
// the one deliberately violating line below, suppressed by lint:allow — the
// runner asserts it shows up as *suppressed*, proving the rule saw it.

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Node {
  std::uint64_t id;
};

struct Registry {
  std::map<std::uint64_t, Node*> by_id;     // pointer VALUES are fine
  std::set<std::uint64_t> ids;              // stable ids as keys: fine
  std::unordered_map<Node*, int> lookup;    // unordered: point lookups only,
                                            // iteration is determinism-ast's
                                            // concern, not this rule's
  std::vector<Node*> insertion_order;       // sequence containers: fine
};

int EscapeHatch() {
  std::set<Node*> scratch;  // lint:allow(pointer-key-order)
  return static_cast<int>(scratch.size());
}

}  // namespace fixture
