// dibs-analyzer fixture: every marked line must fire [determinism-ast].
// The point of the AST rule (vs the retired regex lint) is seeing through
// sugar: typedefs, `auto`, and member types all resolve to canonical types.

#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

using Table = std::unordered_map<int, double>;  // sugar: alias hides the type

struct Holder {
  Table table;
};

double IterateThroughAlias(const Table& t) {
  double sum = 0;
  for (const auto& [key, value] : t) {  // expect(determinism-ast)
    sum += value + key;
  }
  return sum;
}

double IterateThroughAuto(Holder& h) {
  auto& t = h.table;  // sugar: auto hides the type
  double sum = 0;
  for (auto it = t.begin(); it != t.end(); ++it) {  // expect(determinism-ast)
    sum += it->second;
  }
  return sum;
}

unsigned HardwareEntropy() {
  std::random_device rd;  // expect(determinism-ast)
  return rd();
}

int LibcRand() {
  return std::rand();  // expect(determinism-ast)
}

long WallClock() {
  auto now = std::chrono::steady_clock::now();  // expect(determinism-ast)
  return now.time_since_epoch().count();
}

}  // namespace fixture
