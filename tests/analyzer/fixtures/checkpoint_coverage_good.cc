// dibs-analyzer fixture: zero [checkpoint-coverage] findings. Each class
// shows one legitimate way to own a simulator event: derive from
// ckpt::Checkpointable, be listed in ckpt_covered_by (a parent component
// reports and re-arms the event — dibs::Port is covered by dibs::Network),
// or carry a lint:allow with a written justification (which must suppress a
// LIVE finding — the fixture suite asserts the rule fired underneath).

namespace dibs {

class Simulator {
 public:
  void Schedule(double delay) { last_ = delay; }
  void ScheduleAt(double when) { last_ = when; }

 private:
  double last_ = 0;
};

namespace ckpt {
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
};
}  // namespace ckpt

// Mirrors the real dibs::Port: listed in RuleConfig.ckpt_covered_by because
// Network serializes and re-arms every device-layer timer.
class Port {
 public:
  explicit Port(Simulator& sim) : sim_(sim) {}
  void ArmDrain() { sim_.Schedule(0.5); }

 private:
  Simulator& sim_;
};

}  // namespace dibs

namespace fixture {

// The covered case: the checkpoint layer sees this class, so its pending
// event is reported, saved, and re-armed under the original id.
class CoveredTimer : public dibs::ckpt::Checkpointable {
 public:
  explicit CoveredTimer(dibs::Simulator& sim) : sim_(sim) {}
  void Start() { sim_.Schedule(1.0); }

 private:
  dibs::Simulator& sim_;
};

// The escape hatch: a test-only event that can never be live at a barrier.
class InjectedFault {
 public:
  explicit InjectedFault(dibs::Simulator& sim) : sim_(sim) {}
  void Arm() {
    sim_.ScheduleAt(9.0);  // lint:allow(checkpoint-coverage) test-only, never armed with checkpoints
  }

 private:
  dibs::Simulator& sim_;
};

}  // namespace fixture
