// dibs-analyzer fixture: the GuardRecorder pattern is accepted as a pure
// observer — it reads breaker state through const accessors and mutates only
// its own counters. The one deliberate violation below is escaped with
// lint:allow; the runner asserts it shows up as *suppressed*, proving the
// rule saw the guard classes.

namespace dibs {

class DetourGuard {
 public:
  int state() const { return state_; }
  long trips() const { return trips_; }
  double SuppressedFor(double now) const { return now - since_; }
  bool AdmitDetour() {
    ++attempts_;
    return state_ == 0;
  }

 private:
  int state_ = 0;
  long trips_ = 0;
  long attempts_ = 0;
  double since_ = 0;
};

class GuardFabric {
 public:
  const DetourGuard& guard(int node) const {
    (void)node;
    return guard_;
  }
  double FabricPressure() const { return pressure_; }
  void NotePacket(int node) { last_node_ = node; }

 private:
  DetourGuard guard_;
  double pressure_ = 0;
  int last_node_ = 0;
};

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnGuardTransition(int node, int from, int to) {
    (void)node;
    (void)from;
    (void)to;
  }
  virtual void OnDrop(int uid) { (void)uid; }
};

}  // namespace dibs

namespace fixture {

// The GuardRecorder shape: transition bookkeeping and const reads only.
class GuardRecorder : public dibs::NetworkObserver {
 public:
  explicit GuardRecorder(const dibs::GuardFabric& fabric) : fabric_(fabric) {}
  void OnGuardTransition(int node, int from, int to) override {
    ++transitions_;
    if (from == 0 && to == 1) {
      ++trips_;
    }
    last_pressure_ = fabric_.FabricPressure();       // const: pure
    last_trips_ = fabric_.guard(node).trips();       // const chain: pure
    dwell_ = fabric_.guard(node).SuppressedFor(1.0); // const: pure
  }
  void OnDrop(int uid) override {
    (void)uid;
    if (meddler_ != nullptr) {
      meddler_->NotePacket(0);  // lint:allow(observer-purity)
    }
  }

 private:
  const dibs::GuardFabric& fabric_;
  dibs::GuardFabric* meddler_ = nullptr;
  long transitions_ = 0;
  long trips_ = 0;
  long last_trips_ = 0;
  double last_pressure_ = 0;
  double dwell_ = 0;
};

// Not an observer: SwitchNode-style forwarding code drives the guard by
// design — the rule must not follow calls that start outside observers.
class ForwardingPath {
 public:
  bool Decide(dibs::GuardFabric& fabric, dibs::DetourGuard& guard) {
    fabric.NotePacket(3);
    return guard.AdmitDetour();
  }
};

}  // namespace fixture
