// dibs-analyzer fixture: every marked line must fire [signal-safety].
// Covers both registration paths (std::signal and sigaction's sa_handler
// field) plus the configured dibs::FlightRecorder::DumpToFd root.

#include <csignal>
#include <cstdio>

namespace fixture {

int* g_scratch = nullptr;

// Reached only from CrashHandler below: the finding lands at the unsafe
// call site inside this repo-local helper.
void LogCrash(int sig) {
  std::fprintf(stderr, "crash: %d\n", sig);  // expect(signal-safety)
}

void CrashHandler(int sig) {
  g_scratch = new int[16];  // expect(signal-safety)
  LogCrash(sig);            // indirect: flagged inside LogCrash, not here
}

void ThrowingHandler(int sig) {
  if (sig != 0) {
    throw sig;  // expect(signal-safety)
  }
}

void InstallBad() {
  std::signal(SIGSEGV, CrashHandler);
}

void InstallBadSigaction() {
  struct sigaction sa {};
  sa.sa_handler = &ThrowingHandler;
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace fixture

namespace dibs {

// Mirror of the real flight recorder's dump entry point, which the rule
// treats as a signal-safety root by qualified name (the crash handler in
// src/trace/flight_recorder.cc drives it).
class FlightRecorder {
 public:
  void DumpToFd(int fd) {
    buf_ = new char[256];                      // expect(signal-safety)
    std::snprintf(buf_, 256, "fd=%d", fd);     // expect(signal-safety)
  }

 private:
  char* buf_ = nullptr;
};

}  // namespace dibs
