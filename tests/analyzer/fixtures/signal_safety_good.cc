// dibs-analyzer fixture: nothing here may fire [signal-safety], except the
// one deliberately violating line below, suppressed by lint:allow — the
// runner asserts it shows up as *suppressed*, proving the rule saw it.
//
// All fixtures are merged into one model and USRs are signature-based, so
// names here deliberately avoid colliding with signal_safety_bad.cc (its
// definitions would win the merge and this file would be tested vacuously);
// that is also why DumpToFd takes an extra parameter.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <unistd.h>

namespace fixture {

volatile std::sig_atomic_t g_flag = 0;

void QuietHandler(int sig) {
  g_flag = sig;
  const char msg[] = "dibs: fatal signal\n";
  write(2, msg, sizeof msg - 1);  // async-signal-safe
  raise(sig);                     // async-signal-safe
}

void InstallGood() {
  std::signal(SIGINT, QuietHandler);
}

void ChattyHandler(int sig) {
  std::fprintf(stderr, "sig %d\n", sig);  // lint:allow(signal-safety)
  _exit(1);
}

void InstallGoodSigaction() {
  struct sigaction sa {};
  sa.sa_handler = &ChattyHandler;
  sigaction(SIGQUIT, &sa, nullptr);
}

}  // namespace fixture

namespace dibs {

class FlightRecorder {
 public:
  void DumpToFd(int fd, int /*flags*/) {
    const char* line = "trace-event\n";
    write(fd, line, strlen(line));  // both async-signal-safe
  }
};

}  // namespace dibs
