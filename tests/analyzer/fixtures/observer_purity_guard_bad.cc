// dibs-analyzer fixture: every marked line must fire [observer-purity].
// DetourGuard and GuardFabric are simulation state — an observer that calls
// their non-const methods is steering the breaker, not observing it.

namespace dibs {

class DetourGuard {
 public:
  int state() const { return state_; }
  bool AdmitDetour() {
    ++attempts_;
    return state_ == 0;
  }
  void NoteTtlExpiry() { ++ttl_drops_; }

 private:
  int state_ = 0;
  long attempts_ = 0;
  long ttl_drops_ = 0;
};

class GuardFabric {
 public:
  double FabricPressure() const { return pressure_; }
  void NotePacket(int node) { last_node_ = node; }
  void NoteDetour(int node, bool bounce) {
    last_node_ = node;
    (void)bounce;
  }

 private:
  double pressure_ = 0;
  int last_node_ = 0;
};

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnGuardTransition(int node, int from, int to) {
    (void)node;
    (void)from;
    (void)to;
  }
  virtual void OnDrop(int uid) { (void)uid; }
};

}  // namespace dibs

namespace fixture {

// Reached only from SteeringObserver::OnDrop below: the finding lands at the
// mutating call inside this repo-local helper.
void PumpDemand(dibs::DetourGuard& guard) {
  guard.AdmitDetour();  // expect(observer-purity)
}

class SteeringObserver : public dibs::NetworkObserver {
 public:
  SteeringObserver(dibs::GuardFabric& fabric, dibs::DetourGuard& guard)
      : fabric_(fabric), guard_(guard) {
    fabric_.NotePacket(0);  // constructors are exempt: registration-time setup
  }
  void OnGuardTransition(int node, int from, int to) override {
    (void)from;
    (void)to;
    fabric_.NoteDetour(node, false);  // expect(observer-purity)
    guard_.NoteTtlExpiry();           // expect(observer-purity)
  }
  void OnDrop(int uid) override {
    (void)uid;
    PumpDemand(guard_);  // indirect: flagged inside PumpDemand, not here
  }

 private:
  dibs::GuardFabric& fabric_;
  dibs::DetourGuard& guard_;
};

}  // namespace fixture
