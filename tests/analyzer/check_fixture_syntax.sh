#!/usr/bin/env bash
# Validates that every dibs-analyzer fixture is real, compilable C++ — so a
# fixture that rots does not silently turn the libclang fixture suite (which
# skips where libclang is absent) into a no-op. Runs everywhere g++ exists.
set -u
here="$(cd "$(dirname "$0")" && pwd)"
cxx="${CXX:-g++}"
status=0
for f in "$here"/fixtures/*.cc; do
  if "$cxx" -std=c++20 -fsyntax-only -Wall -Wextra "$f"; then
    echo "ok: $(basename "$f")"
  else
    echo "FAIL: $(basename "$f")"
    status=1
  fi
done
exit $status
