#!/usr/bin/env python3
"""Unit tests for the dibs-analyzer rule kernels, source scanner, baseline
machinery, and the determinism_lint pre-pass.

Runs everywhere: rules are pure functions over the frontend-neutral Model
(tools/analyzer/model.py), so no libclang is needed — Models are built by
hand. The libclang end-to-end path is covered by run_fixture_tests.py, which
skips where the bindings are unavailable.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "tools"))

from analyzer import baseline  # noqa: E402
from analyzer import rules  # noqa: E402
from analyzer import source_text  # noqa: E402
from analyzer.model import (  # noqa: E402
    CallSite, FunctionInfo, HandlerReg, IterationSite, Loc, Model, RecordInfo,
    VarInfo)


def fn(usr, qualified, *, klass="", kind="function", is_const=False,
       is_definition=True, in_repo=True, calls=(), news=(), throws=(),
       file="src/x.cc", line=1):
    name = qualified.rsplit("::", 1)[-1]
    return FunctionInfo(
        usr=usr, name=name, qualified=qualified, loc=Loc(file, line),
        class_qualified=klass, kind=kind, is_const=is_const,
        is_definition=is_definition, in_repo=in_repo, calls=list(calls),
        news=list(news), throws=list(throws))


def call(callee_usr, qualified, *, klass="", is_method=False, is_const=False,
         file="src/x.cc", line=10):
    name = qualified.rsplit("::", 1)[-1]
    return CallSite(
        loc=Loc(file, line), callee_usr=callee_usr, callee_name=name,
        callee_qualified=qualified, callee_class=klass,
        callee_is_method=is_method, callee_is_const=is_const)


def run(model, rule):
    return rules.run_rules(model, rules=[rule])


class SourceTextTest(unittest.TestCase):
    def test_line_comment_masked(self):
        sc = source_text.scan("int x = 1;  // rand() in prose\n")
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("int x = 1;", sc.code(1))

    def test_block_comment_masked_single_line(self):
        sc = source_text.scan("/* rand() */ int y;\n")
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("int y;", sc.code(1))

    def test_block_comment_masked_multi_line(self):
        sc = source_text.scan("/* first\n * rand() here\n */ int z;\n")
        self.assertNotIn("rand", sc.code(2))
        self.assertIn("int z;", sc.code(3))

    def test_string_literal_masked(self):
        sc = source_text.scan('log("calling rand()");\n')
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("log(", sc.code(1))

    def test_string_escapes(self):
        sc = source_text.scan('s = "a\\"rand()"; f();\n')
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("f();", sc.code(1))

    def test_char_literal_masked(self):
        sc = source_text.scan("char c = 'r'; go();\n")
        self.assertIn("go();", sc.code(1))

    def test_raw_string_masked(self):
        sc = source_text.scan('auto s = R"(rand() here)"; f();\n')
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("f();", sc.code(1))

    def test_raw_string_custom_delim(self):
        sc = source_text.scan('auto s = R"x(a )" rand b)x"; g();\n')
        self.assertNotIn("rand", sc.code(1))
        self.assertIn("g();", sc.code(1))

    def test_columns_preserved(self):
        line = 'foo(); /* pad */ bar();\n'
        sc = source_text.scan(line)
        self.assertEqual(len(sc.code(1)), len(line) - 1)
        self.assertEqual(sc.code(1).index("bar"), line.index("bar"))

    def test_allow_basic(self):
        sc = source_text.scan("x();  // lint:allow(determinism-ast)\n")
        self.assertTrue(sc.allowed(1, "determinism-ast"))
        self.assertFalse(sc.allowed(1, "signal-safety"))
        self.assertFalse(sc.allowed(2, "determinism-ast"))

    def test_allow_comma_list(self):
        sc = source_text.scan("x();  // lint:allow(rand, wall-clock)\n")
        self.assertTrue(sc.allowed(1, "rand"))
        self.assertTrue(sc.allowed(1, "wall-clock"))

    def test_allow_in_block_comment(self):
        sc = source_text.scan("x(); /* lint:allow(rand) */\n")
        self.assertTrue(sc.allowed(1, "rand"))

    def test_allow_tail_not_code(self):
        # The old regex lint left text after lint:allow(...) in the scanned
        # line; the scanner must treat the whole trailing comment as comment.
        sc = source_text.scan(
            "now();  // lint:allow(wall-clock), unlike rand()\n")
        self.assertTrue(sc.allowed(1, "wall-clock"))
        self.assertNotIn("rand", sc.code(1))

    def test_allow_inside_string_is_not_an_allow(self):
        sc = source_text.scan('s = "// lint:allow(rand)"; rand();\n')
        self.assertFalse(sc.allowed(1, "rand"))
        self.assertIn("rand();", sc.code(1))


class ModelTest(unittest.TestCase):
    def test_derives_from_transitive(self):
        m = Model()
        m.add_record(RecordInfo("u1", "A", bases=["B"]))
        m.add_record(RecordInfo("u2", "B", bases=["dibs::NetworkObserver"]))
        self.assertTrue(m.derives_from("A", {"dibs::NetworkObserver"}))
        self.assertFalse(m.derives_from("A", {"dibs::TraceSink"}))
        self.assertFalse(m.derives_from("missing", {"dibs::NetworkObserver"}))

    def test_derives_from_cycle_terminates(self):
        m = Model()
        m.add_record(RecordInfo("u1", "A", bases=["B"]))
        m.add_record(RecordInfo("u2", "B", bases=["A"]))
        self.assertFalse(m.derives_from("A", {"C"}))

    def test_definition_wins(self):
        m = Model()
        m.add_function(fn("u", "f", is_definition=False, in_repo=False))
        m.add_function(fn("u", "f", is_definition=True))
        self.assertTrue(m.functions["u"].is_definition)
        # A later declaration must not displace the definition.
        m.add_function(fn("u", "f", is_definition=False, in_repo=False))
        self.assertTrue(m.functions["u"].is_definition)

    def test_merge_unions_bases(self):
        a, b = Model(), Model()
        a.add_record(RecordInfo("u", "C", bases=["X"]))
        b.add_record(RecordInfo("u", "C", bases=["Y"]))
        a.merge(b)
        self.assertEqual(sorted(a.records["C"].bases), ["X", "Y"])


class DeterminismRuleTest(unittest.TestCase):
    def test_unordered_range_for_fires(self):
        m = Model()
        m.iterations.append(IterationSite(
            Loc("src/a.cc", 5),
            "std::unordered_map<int, double, std::hash<int>>"))
        self.assertEqual(len(run(m, "determinism-ast")), 1)

    def test_unordered_begin_call_fires(self):
        m = Model()
        m.iterations.append(IterationSite(
            Loc("src/a.cc", 5), "std::unordered_set<int> &",
            form="begin-call"))
        self.assertEqual(len(run(m, "determinism-ast")), 1)

    def test_ordered_map_silent(self):
        m = Model()
        m.iterations.append(IterationSite(
            Loc("src/a.cc", 5), "std::map<int, double>"))
        self.assertEqual(run(m, "determinism-ast"), [])

    def test_random_device_var_fires(self):
        m = Model()
        m.vars.append(VarInfo(Loc("src/a.cc", 3), "rd", "std::random_device"))
        self.assertEqual(len(run(m, "determinism-ast")), 1)

    def test_random_device_whitelisted_in_rng_header(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("/repo/src/util/rng.h", 3), "rd", "std::random_device"))
        self.assertEqual(run(m, "determinism-ast"), [])

    def test_rand_call_fires(self):
        m = Model()
        m.add_function(fn("u", "dibs::Step",
                          calls=[call("c", "std::rand")]))
        self.assertEqual(len(run(m, "determinism-ast")), 1)

    def test_rand_in_system_header_silent(self):
        # Only calls made FROM repo code are findings.
        m = Model()
        m.add_function(fn("u", "std::shuffle", in_repo=False,
                          calls=[call("c", "rand")]))
        self.assertEqual(run(m, "determinism-ast"), [])

    def test_wall_clock_fires_through_inline_namespace(self):
        m = Model()
        m.add_function(fn("u", "dibs::Step", calls=[
            call("c", "std::chrono::_V2::steady_clock::now")]))
        self.assertEqual(len(run(m, "determinism-ast")), 1)

    def test_wall_clock_whitelisted_under_exp(self):
        m = Model()
        m.add_function(fn("u", "dibs::Sweep", calls=[
            call("c", "std::chrono::steady_clock::now",
                 file="/repo/src/exp/sweep.cc")]))
        self.assertEqual(run(m, "determinism-ast"), [])


class PointerKeyRuleTest(unittest.TestCase):
    def test_map_pointer_key_fires(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "m", "std::map<dibs::Node *, int>"))
        found = run(m, "pointer-key-order")
        self.assertEqual(len(found), 1)
        self.assertIn("dibs::Node *", found[0].message)

    def test_set_const_pointer_key_fires(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "s",
            "std::set<const dibs::Packet *, std::less<const dibs::Packet *>>",
            kind="field"))
        self.assertEqual(len(run(m, "pointer-key-order")), 1)

    def test_inline_namespace_spelling_fires(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "m", "std::__1::multiset<dibs::Node *>"))
        self.assertEqual(len(run(m, "pointer-key-order")), 1)

    def test_param_skipped(self):
        # The declaration of the container fires; every function taking it
        # by reference must not re-fire.
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 9), "arg",
            "const std::map<dibs::Node *, int> &", kind="param"))
        self.assertEqual(run(m, "pointer-key-order"), [])

    def test_id_key_silent(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "m",
            "std::map<unsigned long, dibs::Node *>"))
        self.assertEqual(run(m, "pointer-key-order"), [])

    def test_unordered_pointer_key_is_not_this_rules_concern(self):
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "m", "std::unordered_map<dibs::Node *, int>"))
        self.assertEqual(run(m, "pointer-key-order"), [])

    def test_pointer_in_nested_arg_silent(self):
        # Deliberately shallow: only the KEY type position is inspected.
        m = Model()
        m.vars.append(VarInfo(
            Loc("src/a.cc", 3), "m",
            "std::map<std::pair<int, dibs::Node *>, int>"))
        self.assertEqual(run(m, "pointer-key-order"), [])


def observer_model():
    """An Obs subclass of dibs::NetworkObserver with one hook method."""
    m = Model()
    m.add_record(RecordInfo("r1", "dibs::NetworkObserver"))
    m.add_record(RecordInfo("r2", "Obs", bases=["dibs::NetworkObserver"]))
    return m


class ObserverPurityRuleTest(unittest.TestCase):
    def test_nonconst_sim_call_fires(self):
        m = observer_model()
        m.add_function(fn("u", "Obs::OnDrop", klass="Obs", kind="method",
                          calls=[call("c", "dibs::Network::Inject",
                                      klass="dibs::Network", is_method=True)]))
        found = run(m, "observer-purity")
        self.assertEqual(len(found), 1)
        self.assertIn("Inject", found[0].message)

    def test_schedule_gets_dedicated_message(self):
        m = observer_model()
        m.add_function(fn("u", "Obs::OnDrop", klass="Obs", kind="method",
                          calls=[call("c", "dibs::Simulator::Schedule",
                                      klass="dibs::Simulator",
                                      is_method=True)]))
        found = run(m, "observer-purity")
        self.assertEqual(len(found), 1)
        self.assertIn("schedules", found[0].message)

    def test_const_call_silent(self):
        m = observer_model()
        m.add_function(fn("u", "Obs::OnDrop", klass="Obs", kind="method",
                          calls=[call("c", "dibs::Simulator::Now",
                                      klass="dibs::Simulator", is_method=True,
                                      is_const=True)]))
        self.assertEqual(run(m, "observer-purity"), [])

    def test_constructor_exempt(self):
        m = observer_model()
        m.add_function(fn("u", "Obs::Obs", klass="Obs", kind="constructor",
                          calls=[call("c", "dibs::Network::Inject",
                                      klass="dibs::Network", is_method=True)]))
        self.assertEqual(run(m, "observer-purity"), [])

    def test_indirect_through_helper_fires_at_helper(self):
        m = observer_model()
        m.add_function(fn("u1", "Obs::OnDrop", klass="Obs", kind="method",
                          calls=[call("u2", "Poke")]))
        m.add_function(fn("u2", "Poke", line=40,
                          calls=[call("c", "dibs::Network::Inject",
                                      klass="dibs::Network", is_method=True,
                                      line=41)]))
        found = run(m, "observer-purity")
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].line, 41)

    def test_non_observer_silent(self):
        m = Model()
        m.add_record(RecordInfo("r", "Driver"))
        m.add_function(fn("u", "Driver::Step", klass="Driver", kind="method",
                          calls=[call("c", "dibs::Network::Inject",
                                      klass="dibs::Network", is_method=True)]))
        self.assertEqual(run(m, "observer-purity"), [])

    def test_operator_assign_exempt(self):
        m = observer_model()
        m.add_function(fn("u", "Obs::OnDrop", klass="Obs", kind="method",
                          calls=[call("c", "dibs::Packet::operator=",
                                      klass="dibs::Packet", is_method=True)]))
        self.assertEqual(run(m, "observer-purity"), [])


class SignalSafetyRuleTest(unittest.TestCase):
    def handler_model(self):
        m = Model()
        m.handler_regs.append(HandlerReg(Loc("src/a.cc", 50), "uh", "Handler"))
        return m

    def test_allocation_fires(self):
        m = self.handler_model()
        m.add_function(fn("uh", "Handler", news=[Loc("src/a.cc", 12)]))
        found = run(m, "signal-safety")
        self.assertEqual(len(found), 1)
        self.assertIn("heap", found[0].message)

    def test_throw_fires(self):
        m = self.handler_model()
        m.add_function(fn("uh", "Handler", throws=[Loc("src/a.cc", 12)]))
        self.assertEqual(len(run(m, "signal-safety")), 1)

    def test_unwhitelisted_extern_fires(self):
        m = self.handler_model()
        m.add_function(fn("uh", "Handler",
                          calls=[call("cp", "printf")]))
        found = run(m, "signal-safety")
        self.assertEqual(len(found), 1)
        self.assertIn("printf", found[0].message)

    def test_whitelisted_extern_silent(self):
        m = self.handler_model()
        m.add_function(fn("uh", "Handler", calls=[
            call("c1", "write"), call("c2", "strlen"), call("c3", "raise")]))
        self.assertEqual(run(m, "signal-safety"), [])

    def test_dump_to_fd_is_a_root_without_registration(self):
        m = Model()
        m.add_function(fn("ud", "dibs::FlightRecorder::DumpToFd",
                          klass="dibs::FlightRecorder", kind="method",
                          news=[Loc("src/trace/fr.cc", 77)]))
        self.assertEqual(len(run(m, "signal-safety")), 1)

    def test_finding_in_system_code_anchors_at_repo_call_site(self):
        # Handler -> std::to_string (defined in a header) -> malloc. The
        # finding must point at the repo call line (12), not the header.
        m = self.handler_model()
        m.add_function(fn(
            "uh", "Handler",
            calls=[call("us", "std::to_string", file="src/a.cc", line=12)]))
        m.add_function(fn(
            "us", "std::to_string", in_repo=False, file="/usr/inc/s.h",
            line=900, calls=[call("um", "malloc", file="/usr/inc/s.h",
                                  line=901)]))
        found = run(m, "signal-safety")
        self.assertEqual(len(found), 1)
        self.assertEqual((found[0].file, found[0].line), ("src/a.cc", 12))

    def test_no_roots_no_findings(self):
        m = Model()
        m.add_function(fn("u", "Normal", news=[Loc("src/a.cc", 12)],
                          calls=[call("cp", "printf")]))
        self.assertEqual(run(m, "signal-safety"), [])


def sched(name="Schedule", line=10):
    return call("cs", "dibs::Simulator::" + name, klass="dibs::Simulator",
                is_method=True, line=line)


class CheckpointCoverageRuleTest(unittest.TestCase):
    def test_uncovered_class_fires(self):
        m = Model()
        m.add_record(RecordInfo("r", "Rogue"))
        m.add_function(fn("u", "Rogue::Start", klass="Rogue", kind="method",
                          calls=[sched()]))
        found = run(m, "checkpoint-coverage")
        self.assertEqual(len(found), 1)
        self.assertIn("Rogue", found[0].message)
        self.assertIn("Checkpointable", found[0].message)

    def test_free_function_fires(self):
        m = Model()
        m.add_function(fn("u", "FireAndForget", calls=[sched("ScheduleAt")]))
        found = run(m, "checkpoint-coverage")
        self.assertEqual(len(found), 1)
        self.assertIn("free function", found[0].message)

    def test_checkpointable_subclass_silent(self):
        m = Model()
        m.add_record(RecordInfo(
            "r", "Covered", bases=["dibs::ckpt::Checkpointable"]))
        m.add_function(fn("u", "Covered::Start", klass="Covered",
                          kind="method", calls=[sched()]))
        self.assertEqual(run(m, "checkpoint-coverage"), [])

    def test_transitively_checkpointable_silent(self):
        m = Model()
        m.add_record(RecordInfo("r1", "Base",
                                bases=["dibs::ckpt::Checkpointable"]))
        m.add_record(RecordInfo("r2", "Derived", bases=["Base"]))
        m.add_function(fn("u", "Derived::Start", klass="Derived",
                          kind="method", calls=[sched()]))
        self.assertEqual(run(m, "checkpoint-coverage"), [])

    def test_covered_by_parent_silent(self):
        # dibs::Port's timers are serialized and re-armed by dibs::Network.
        m = Model()
        m.add_record(RecordInfo("r", "dibs::Port"))
        m.add_function(fn("u", "dibs::Port::ArmDrain", klass="dibs::Port",
                          kind="method", calls=[sched()]))
        self.assertEqual(run(m, "checkpoint-coverage"), [])

    def test_simulator_itself_silent(self):
        m = Model()
        m.add_record(RecordInfo("r", "dibs::Simulator"))
        m.add_function(fn("u", "dibs::Simulator::Run",
                          klass="dibs::Simulator", kind="method",
                          calls=[sched()]))
        self.assertEqual(run(m, "checkpoint-coverage"), [])

    def test_const_simulator_reads_silent(self):
        m = Model()
        m.add_record(RecordInfo("r", "Rogue"))
        m.add_function(fn("u", "Rogue::Peek", klass="Rogue", kind="method",
                          calls=[call("cn", "dibs::Simulator::Now",
                                      klass="dibs::Simulator", is_method=True,
                                      is_const=True)]))
        self.assertEqual(run(m, "checkpoint-coverage"), [])

    def test_restore_event_at_gated_too(self):
        m = Model()
        m.add_record(RecordInfo("r", "Rogue"))
        m.add_function(fn("u", "Rogue::Rearm", klass="Rogue", kind="method",
                          calls=[sched("RestoreEventAt", line=21)]))
        found = run(m, "checkpoint-coverage")
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].line, 21)


class BaselineTest(unittest.TestCase):
    def test_context_collapses_whitespace_and_masks_comments(self):
        sc = source_text.scan("  int   x;   // rand()\n")
        self.assertEqual(baseline.context_of(sc, 1), "int x;")

    def test_round_trip_and_multiset_semantics(self):
        f1 = rules.Finding("r", "a.cc", 3, 1, "msg")
        f2 = rules.Finding("r", "a.cc", 9, 1, "msg")  # same context, 2nd hit
        contexts = {("a.cc", 3): "int x;", ("a.cc", 9): "int x;"}
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "bl.json")
            baseline.save(path, [f1], contexts)
            bl = baseline.load(path)
            new, matched, stale = baseline.apply([f1, f2], bl, contexts)
        # One entry grandfathers exactly one of the two identical findings.
        self.assertEqual(len(matched), 1)
        self.assertEqual(len(new), 1)
        self.assertEqual(stale, [])

    def test_stale_entries_reported(self):
        f1 = rules.Finding("r", "a.cc", 3, 1, "msg")
        contexts = {("a.cc", 3): "int x;"}
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "bl.json")
            baseline.save(path, [f1], contexts)
            bl = baseline.load(path)
            new, matched, stale = baseline.apply([], bl, contexts)
        self.assertEqual((new, matched), ([], []))
        self.assertEqual(len(stale), 1)

    def test_missing_baseline_is_empty(self):
        self.assertEqual(baseline.load("/nonexistent/bl.json"), {})

    def test_line_drift_does_not_invalidate(self):
        f_moved = rules.Finding("r", "a.cc", 120, 1, "msg")
        bl = {("r", "a.cc", "int x;"): 1}
        new, matched, _ = baseline.apply(
            [f_moved], bl, {("a.cc", 120): "int x;"})
        self.assertEqual(len(matched), 1)
        self.assertEqual(new, [])

    def test_checked_in_baseline_is_empty(self):
        path = os.path.join(REPO, "tools", "analyzer", "baseline.json")
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        self.assertEqual(data["findings"], [])


class DeterminismLintIntegrationTest(unittest.TestCase):
    """The textual pre-pass through its CLI, on a synthetic tree."""

    def run_lint(self, source):
        with tempfile.TemporaryDirectory() as td:
            os.makedirs(os.path.join(td, "src"))
            with open(os.path.join(td, "src", "t.cc"), "w",
                      encoding="utf-8") as f:
                f.write(source)
            proc = subprocess.run(
                [sys.executable,
                 os.path.join(REPO, "tools", "determinism_lint.py"), td],
                capture_output=True, text=True)
        return proc.returncode, proc.stdout

    def test_rand_call_fires(self):
        rc, out = self.run_lint("int f() { return rand(); }\n")
        self.assertEqual(rc, 1)
        self.assertIn("[rand]", out)

    def test_prose_in_block_comment_silent(self):
        # The pre-compile_commands regex lint false-positived on this.
        rc, out = self.run_lint(
            "/* unlike rand(), dibs::Rng is seeded */\nint f();\n")
        self.assertEqual(rc, 0, out)

    def test_lint_allow_suppresses(self):
        rc, out = self.run_lint(
            "int f() { return rand(); }  // lint:allow(rand)\n")
        self.assertEqual(rc, 0, out)

    def test_allow_tail_comment_not_rescanned(self):
        rc, out = self.run_lint(
            "auto t = std::chrono::steady_clock::now();"
            "  // lint:allow(wall-clock), unlike rand()\n")
        self.assertEqual(rc, 0, out)

    def test_wall_clock_fires(self):
        rc, out = self.run_lint(
            "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(rc, 1)
        self.assertIn("[wall-clock]", out)

    def test_repo_tree_is_clean(self):
        proc = subprocess.run(
            [sys.executable,
             os.path.join(REPO, "tools", "determinism_lint.py"), REPO],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
