#include "src/stats/detour_recorder.h"
#include "src/stats/flow_recorder.h"
#include "src/stats/guard_recorder.h"

#include <gtest/gtest.h>

#include <set>

namespace dibs {
namespace {

FlowResult MakeFlow(TrafficClass cls, uint64_t bytes, double fct_ms) {
  FlowResult r;
  r.spec.traffic_class = cls;
  r.spec.size_bytes = bytes;
  r.fct = Time::FromSeconds(fct_ms / 1000.0);
  return r;
}

TEST(FlowRecorderTest, SeparatesTrafficClasses) {
  FlowRecorder rec;
  rec.RecordFlow(MakeFlow(TrafficClass::kBackground, 5000, 1.0));
  rec.RecordFlow(MakeFlow(TrafficClass::kQuery, 20000, 2.0));
  rec.RecordFlow(MakeFlow(TrafficClass::kLongLived, 1000000, 100.0));
  EXPECT_EQ(rec.background_flows().size(), 1u);
  EXPECT_EQ(rec.query_flows().size(), 1u);
}

TEST(FlowRecorderTest, ShortBackgroundFilterBySize) {
  FlowRecorder rec;
  rec.RecordFlow(MakeFlow(TrafficClass::kBackground, 500, 1.0));     // below 1KB
  rec.RecordFlow(MakeFlow(TrafficClass::kBackground, 5000, 2.0));    // in range
  rec.RecordFlow(MakeFlow(TrafficClass::kBackground, 9000, 3.0));    // in range
  rec.RecordFlow(MakeFlow(TrafficClass::kBackground, 50000, 50.0));  // above 10KB
  const auto fcts = rec.BackgroundFctMs(1000, 10000);
  EXPECT_EQ(fcts.size(), 2u);
  EXPECT_NEAR(rec.ShortBackgroundFct99Ms(), 3.0, 0.02);
}

TEST(FlowRecorderTest, QctPercentile) {
  FlowRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    QueryResult q;
    q.qct = Time::Millis(i);
    rec.RecordQuery(q);
  }
  EXPECT_NEAR(rec.Qct99Ms(), 99.0, 1.1);
  EXPECT_EQ(rec.QctSummary().count, 100u);
}

TEST(FlowRecorderTest, RetransmitAggregation) {
  FlowRecorder rec;
  FlowResult r = MakeFlow(TrafficClass::kQuery, 20000, 5.0);
  r.retransmits = 3;
  r.timeouts = 1;
  rec.RecordFlow(r);
  rec.RecordFlow(r);
  EXPECT_EQ(rec.total_retransmits(), 6u);
  EXPECT_EQ(rec.total_timeouts(), 2u);
}

TEST(FlowRecorderTest, EmptyMetricsAreZero) {
  FlowRecorder rec;
  EXPECT_EQ(rec.Qct99Ms(), 0.0);
  EXPECT_EQ(rec.ShortBackgroundFct99Ms(), 0.0);
}

Packet DeliveredPacket(uint16_t detours, bool ce = false,
                       TrafficClass cls = TrafficClass::kQuery) {
  Packet p;
  p.detour_count = detours;
  p.ce = ce;
  p.traffic_class = cls;
  return p;
}

TEST(DetourRecorderTest, CountsDetoursByClass) {
  DetourRecorder rec;
  Packet q = DeliveredPacket(0, false, TrafficClass::kQuery);
  Packet b = DeliveredPacket(0, false, TrafficClass::kBackground);
  rec.OnDetour(3, 1, q, Time::Millis(1));
  rec.OnDetour(3, 2, q, Time::Millis(1));
  rec.OnDetour(4, 1, b, Time::Millis(2));
  EXPECT_EQ(rec.total_detours(), 3u);
  EXPECT_EQ(rec.query_detours(), 2u);
}

TEST(DetourRecorderTest, TimelineBucketsPerSwitch) {
  DetourRecorder rec(Time::Micros(100));
  Packet p = DeliveredPacket(0);
  rec.OnDetour(7, 0, p, Time::Micros(50));    // bucket 0
  rec.OnDetour(7, 0, p, Time::Micros(70));    // bucket 0
  rec.OnDetour(7, 0, p, Time::Micros(250));   // bucket 2
  rec.OnDetour(9, 0, p, Time::Micros(130));   // other switch
  const auto series7 = rec.TimelineFor(7);
  ASSERT_EQ(series7.size(), 2u);
  EXPECT_EQ(series7[0].first, Time::Zero());
  EXPECT_EQ(series7[0].second, 2u);
  EXPECT_EQ(series7[1].first, Time::Micros(200));
  EXPECT_EQ(series7[1].second, 1u);
  EXPECT_EQ(rec.DetouringSwitches(), (std::vector<int>{7, 9}));
  EXPECT_TRUE(rec.TimelineFor(12).empty());
}

TEST(DetourRecorderTest, DropAccountingByReason) {
  DetourRecorder rec;
  Packet p = DeliveredPacket(0);
  rec.OnDrop(1, p, DropReason::kTtlExpired, Time::Zero());
  rec.OnDrop(1, p, DropReason::kQueueOverflow, Time::Zero());
  rec.OnDrop(1, p, DropReason::kQueueOverflow, Time::Zero());
  EXPECT_EQ(rec.total_drops(), 3u);
  EXPECT_EQ(rec.drops(DropReason::kQueueOverflow), 2u);
  EXPECT_EQ(rec.drops(DropReason::kTtlExpired), 1u);
  EXPECT_EQ(rec.drops(DropReason::kNoDetourAvailable), 0u);
}

TEST(DetourRecorderTest, DeliveredFractionAndQuantiles) {
  DetourRecorder rec;
  for (int i = 0; i < 80; ++i) {
    rec.OnHostDeliver(0, DeliveredPacket(0), Time::Zero());
  }
  for (int i = 0; i < 20; ++i) {
    rec.OnHostDeliver(0, DeliveredPacket(5), Time::Zero());
  }
  EXPECT_DOUBLE_EQ(rec.DetouredFraction(), 0.2);
  EXPECT_EQ(rec.delivered_packets(), 100u);
  // 80% of packets have detour count < 1.
  EXPECT_LE(rec.DetourCountQuantile(0.8), 1.0);
  EXPECT_GE(rec.DetourCountQuantile(0.95), 5.0);
}

TEST(DetourRecorderTest, MarkedDeliveryCount) {
  DetourRecorder rec;
  rec.OnHostDeliver(0, DeliveredPacket(1, /*ce=*/true), Time::Zero());
  rec.OnHostDeliver(0, DeliveredPacket(0, /*ce=*/false), Time::Zero());
  EXPECT_EQ(rec.delivered_marked(), 1u);
}

TEST(GuardRecorderTest, CountsTripsAndTrippedSwitchesFromTransitions) {
  GuardRecorder rec;
  // Switch 7: full cycle. Switch 9: trips and stays open.
  rec.OnGuardTransition(7, GuardState::kArmed, GuardState::kSuppressed, Time::Millis(1));
  rec.OnGuardTransition(7, GuardState::kSuppressed, GuardState::kProbing, Time::Millis(5));
  rec.OnGuardTransition(7, GuardState::kProbing, GuardState::kArmed, Time::Millis(7));
  rec.OnGuardTransition(9, GuardState::kArmed, GuardState::kSuppressed, Time::Millis(2));
  // PROBING -> SUPPRESSED re-opens but is not a fresh ARMED-edge trip.
  rec.OnGuardTransition(7, GuardState::kArmed, GuardState::kSuppressed, Time::Millis(10));
  rec.OnGuardTransition(7, GuardState::kSuppressed, GuardState::kProbing, Time::Millis(14));
  rec.OnGuardTransition(7, GuardState::kProbing, GuardState::kSuppressed, Time::Millis(16));

  EXPECT_EQ(rec.trips(), 3u);
  EXPECT_EQ(rec.transition_count(), 7u);
  EXPECT_EQ(rec.tripped_switches(), (std::set<int>{7, 9}));
}

TEST(GuardRecorderTest, SuppressedDwellIncludesOpenStretches) {
  GuardRecorder rec;
  rec.OnGuardTransition(7, GuardState::kArmed, GuardState::kSuppressed, Time::Millis(1));
  rec.OnGuardTransition(7, GuardState::kSuppressed, GuardState::kProbing, Time::Millis(5));
  rec.OnGuardTransition(9, GuardState::kArmed, GuardState::kSuppressed, Time::Millis(2));
  // Switch 7 banked 4ms closed; switch 9 is still open at the 10ms cutoff.
  EXPECT_DOUBLE_EQ(rec.SuppressedMsUpTo(Time::Millis(10)), 4.0 + 8.0);
}

TEST(GuardRecorderTest, AttributesGuardDropReasons) {
  GuardRecorder rec;
  Packet p = DeliveredPacket(0);
  rec.OnDrop(1, p, DropReason::kGuardSuppressed, Time::Zero());
  rec.OnDrop(1, p, DropReason::kGuardSuppressed, Time::Zero());
  rec.OnDrop(1, p, DropReason::kGuardTtlClamped, Time::Zero());
  rec.OnDrop(1, p, DropReason::kNoEligibleDetour, Time::Zero());
  rec.OnDrop(1, p, DropReason::kQueueOverflow, Time::Zero());  // not guard's
  EXPECT_EQ(rec.suppressed_drops(), 2u);
  EXPECT_EQ(rec.ttl_clamped_drops(), 1u);
  EXPECT_EQ(rec.no_eligible_detour_drops(), 1u);
}

}  // namespace
}  // namespace dibs
