#include <gtest/gtest.h>

#include "src/device/host_node.h"
#include "src/stats/buffer_monitor.h"
#include "src/stats/link_monitor.h"
#include "src/topo/builders.h"

namespace dibs {
namespace {

void Blast(Network& net, HostId src, HostId dst, int packets, FlowId flow = 1) {
  for (int i = 0; i < packets; ++i) {
    Packet p;
    p.uid = net.NextPacketUid();
    p.src = src;
    p.dst = dst;
    p.size_bytes = 1500;
    p.ttl = 255;
    p.flow = flow;
    net.host(src).Send(std::move(p));
  }
}

TEST(LinkMonitorTest, IdleNetworkHasNoHotLinks) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  LinkMonitor::Options opts;
  opts.interval = Time::Millis(1);
  opts.stop_time = Time::Millis(10);
  LinkMonitor monitor(&net, opts);
  monitor.Start();
  sim.RunUntil(Time::Millis(10));
  ASSERT_FALSE(monitor.hot_fractions().empty());
  for (double f : monitor.hot_fractions()) {
    EXPECT_EQ(f, 0.0);
  }
}

TEST(LinkMonitorTest, SaturatedLinkIsHot) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  LinkMonitor::Options opts;
  opts.interval = Time::Millis(1);
  opts.hot_threshold = 0.9;
  opts.stop_time = Time::Millis(4);
  LinkMonitor monitor(&net, opts);
  monitor.Start();
  // 1000 packets back-to-back saturate host0 -> edge for 12ms.
  Blast(net, 0, 5, 1000);
  sim.RunUntil(Time::Millis(4));
  bool any_hot_sample = false;
  for (double f : monitor.hot_fractions()) {
    if (f > 0.0) {
      any_hot_sample = true;
    }
    // Only a handful of the 22 directed links carry this one path.
    EXPECT_LT(f, 0.5);
  }
  EXPECT_TRUE(any_hot_sample);
}

TEST(LinkMonitorTest, HotLinkIndicesIdentifyOwners) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  LinkMonitor::Options opts;
  opts.interval = Time::Millis(1);
  opts.stop_time = Time::Millis(2);
  LinkMonitor monitor(&net, opts);
  monitor.Start();
  Blast(net, 0, 5, 500);
  sim.RunUntil(Time::Millis(2));
  for (size_t idx : monitor.last_hot_links()) {
    EXPECT_LT(idx, monitor.num_monitored_links());
    EXPECT_GE(monitor.port_owner(idx), 0);
  }
}

TEST(LinkMonitorTest, RelativeHotFractionsBounded) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  LinkMonitor::Options opts;
  opts.interval = Time::Millis(1);
  opts.stop_time = Time::Millis(5);
  LinkMonitor monitor(&net, opts);
  monitor.Start();
  Blast(net, 0, 5, 200);
  sim.RunUntil(Time::Millis(5));
  for (double f : monitor.relative_hot_fractions()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(LinkMonitorTest, HostLinksCanBeExcluded) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  LinkMonitor::Options with_hosts;
  with_hosts.stop_time = Time::Millis(1);
  LinkMonitor all(&net, with_hosts);
  LinkMonitor::Options switch_only = with_hosts;
  switch_only.include_host_links = false;
  LinkMonitor fabric(&net, switch_only);
  // Emulab: 6 switch-switch links = 12 directed fabric ports; 6 host links
  // add 6 switch-side ports + 6 NICs.
  EXPECT_EQ(fabric.num_monitored_links(), 12u);
  EXPECT_EQ(all.num_monitored_links(), 24u);
}

TEST(BufferMonitorTest, QuietNetworkReportsNoCongestion) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  BufferMonitor::Options opts;
  opts.interval = Time::Millis(1);
  opts.stop_time = Time::Millis(5);
  BufferMonitor monitor(&net, opts);
  monitor.Start();
  sim.RunUntil(Time::Millis(5));
  EXPECT_EQ(monitor.congested_samples(), 0u);
  EXPECT_TRUE(monitor.one_hop_free_fractions().empty());
  EXPECT_GT(monitor.total_samples(), 0u);
}

TEST(BufferMonitorTest, IncastCongestionYieldsNeighborSamples) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 20;
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  BufferMonitor::Options opts;
  opts.interval = Time::Micros(100);
  opts.congested_fraction = 0.9;
  opts.stop_time = Time::Millis(5);
  BufferMonitor monitor(&net, opts);
  monitor.Start();
  for (HostId src = 0; src < 5; ++src) {
    Blast(net, src, 5, 60, /*flow=*/static_cast<FlowId>(src + 1));
  }
  sim.RunUntil(Time::Millis(5));
  EXPECT_GT(monitor.congested_samples(), 0u);
  ASSERT_FALSE(monitor.one_hop_free_fractions().empty());
  ASSERT_EQ(monitor.one_hop_free_fractions().size(), monitor.two_hop_free_fractions().size());
  for (size_t i = 0; i < monitor.one_hop_free_fractions().size(); ++i) {
    const double one = monitor.one_hop_free_fractions()[i];
    const double two = monitor.two_hop_free_fractions()[i];
    EXPECT_GE(one, 0.0);
    EXPECT_LE(one, 1.0);
    EXPECT_GE(two, 0.0);
    EXPECT_LE(two, 1.0);
  }
  // The paper's key observation (Fig 5): even near congestion, most
  // neighboring buffer space is free.
  double min_two_hop = 1.0;
  for (double f : monitor.two_hop_free_fractions()) {
    min_two_hop = std::min(min_two_hop, f);
  }
  EXPECT_GT(min_two_hop, 0.3);
}

TEST(BufferMonitorTest, SnapshotsCaptureQueueLengths) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 50;
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  BufferMonitor::Options opts;
  opts.interval = Time::Micros(200);
  // Snapshot host 5's edge switch (built last) plus an aggregation switch.
  opts.snapshot_switches = {net.switch_ids()[4], net.switch_ids()[0]};
  opts.stop_time = Time::Millis(2);
  BufferMonitor monitor(&net, opts);
  monitor.Start();
  // Two racks converge on host 5: its edge downlink queue must build.
  Blast(net, 0, 5, 100, /*flow=*/1);
  Blast(net, 2, 5, 100, /*flow=*/2);
  sim.RunUntil(Time::Millis(2));
  ASSERT_FALSE(monitor.snapshots().empty());
  bool any_nonzero = false;
  for (const auto& snap : monitor.snapshots()) {
    ASSERT_EQ(snap.queue_lengths.size(), 2u);
    for (const auto& per_port : snap.queue_lengths) {
      for (size_t q : per_port) {
        any_nonzero |= q > 0;
      }
    }
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace dibs
