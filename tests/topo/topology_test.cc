#include "src/topo/topology.h"

#include <gtest/gtest.h>

namespace dibs {
namespace {

Topology Triangle() {
  // Three switches in a triangle, one host per switch.
  Topology t;
  const int s0 = t.AddNode(NodeKind::kSwitch, "s0");
  const int s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const int s2 = t.AddNode(NodeKind::kSwitch, "s2");
  t.AddLink(s0, s1, 1000000000, Time::Micros(1));
  t.AddLink(s1, s2, 1000000000, Time::Micros(1));
  t.AddLink(s2, s0, 1000000000, Time::Micros(1));
  for (int s : {s0, s1, s2}) {
    const int h = t.AddHost("h" + std::to_string(s));
    t.AddLink(h, s, 1000000000, Time::Micros(1));
  }
  return t;
}

TEST(TopologyTest, NodeAndHostCounts) {
  const Topology t = Triangle();
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_hosts(), 3);
  EXPECT_EQ(t.num_switches(), 3);
  EXPECT_EQ(t.num_links(), 6);
}

TEST(TopologyTest, HostIdsAreDense) {
  const Topology t = Triangle();
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    const int node = t.host_node(h);
    EXPECT_EQ(t.node(node).host_id, h);
    EXPECT_EQ(t.node(node).kind, NodeKind::kHost);
  }
}

TEST(TopologyTest, PortsMatchAdjacency) {
  const Topology t = Triangle();
  // Each switch: 2 switch links + 1 host link.
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(t.ports(n).size(), 3u);
  }
  // Each host: exactly one port.
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    EXPECT_EQ(t.ports(t.host_node(h)).size(), 1u);
  }
}

TEST(TopologyTest, PeerResolvesBothEndpoints) {
  const Topology t = Triangle();
  const TopoLink& l = t.link(0);
  EXPECT_EQ(t.Peer(0, l.node_a), l.node_b);
  EXPECT_EQ(t.Peer(0, l.node_b), l.node_a);
}

TEST(TopologyTest, BfsDistances) {
  const Topology t = Triangle();
  const auto dist = t.BfsDistances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
}

TEST(TopologyTest, HostDiameterOfTriangle) {
  // host -> switch -> switch -> host = 3 hops.
  EXPECT_EQ(Triangle().HostDiameter(), 3);
}

TEST(TopologyTest, SwitchNeighborhoodExcludesCenterAndHosts) {
  const Topology t = Triangle();
  const auto n1 = t.SwitchNeighborhood(0, 1);
  EXPECT_EQ(n1.size(), 2u);
  for (int sw : n1) {
    EXPECT_NE(sw, 0);
    EXPECT_TRUE(IsSwitchKind(t.node(sw).kind));
  }
}

TEST(TopologyTest, SwitchNeighborhoodRadiusGrows) {
  // Chain of 5 switches.
  Topology t;
  int prev = t.AddNode(NodeKind::kSwitch, "s0");
  for (int i = 1; i < 5; ++i) {
    const int cur = t.AddNode(NodeKind::kSwitch, "s" + std::to_string(i));
    t.AddLink(prev, cur, 1000000000, Time::Micros(1));
    prev = cur;
  }
  EXPECT_EQ(t.SwitchNeighborhood(0, 1).size(), 1u);
  EXPECT_EQ(t.SwitchNeighborhood(0, 2).size(), 2u);
  EXPECT_EQ(t.SwitchNeighborhood(0, 4).size(), 4u);
  EXPECT_EQ(t.SwitchNeighborhood(2, 1).size(), 2u);
  EXPECT_EQ(t.SwitchNeighborhood(2, 2).size(), 4u);
}

}  // namespace
}  // namespace dibs
