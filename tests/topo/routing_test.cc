#include "src/topo/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/topo/builders.h"

namespace dibs {
namespace {

TEST(FibTest, NextHopsShortenDistance) {
  const Topology t = BuildPaperFatTree();
  const Fib fib = Fib::Compute(t);
  for (HostId dst = 0; dst < t.num_hosts(); dst += 17) {
    for (int n = 0; n < t.num_nodes(); ++n) {
      if (n == t.host_node(dst)) {
        continue;
      }
      const int d = fib.Distance(n, dst);
      ASSERT_GT(d, 0);
      for (uint16_t port : fib.NextHopPorts(n, dst)) {
        const int neighbor = t.ports(n)[port].neighbor;
        EXPECT_EQ(fib.Distance(neighbor, dst), d - 1);
      }
    }
  }
}

TEST(FibTest, EveryNodeHasARouteToEveryHost) {
  for (int k : {4, 8}) {
    FatTreeOptions opts;
    opts.k = k;
    const Topology t = BuildFatTree(opts);
    const Fib fib = Fib::Compute(t);
    for (HostId dst = 0; dst < t.num_hosts(); ++dst) {
      for (int n = 0; n < t.num_nodes(); ++n) {
        if (n == t.host_node(dst)) {
          continue;
        }
        EXPECT_FALSE(fib.NextHopPorts(n, dst).empty())
            << "node " << n << " has no route to host " << dst;
      }
    }
  }
}

TEST(FibTest, FatTreeEcmpWidths) {
  // In a K-ary fat-tree, an edge switch has K/2 equal-cost uplinks toward a
  // host in a different pod, and exactly 1 next hop toward a local host.
  const int k = 8;
  FatTreeOptions opts;
  opts.k = k;
  const Topology t = BuildFatTree(opts);
  const Fib fib = Fib::Compute(t);

  // Host 0's edge switch is the first edge node in pod 0.
  const int host0_node = t.host_node(0);
  const int edge = t.ports(host0_node)[0].neighbor;
  ASSERT_EQ(t.node(edge).kind, NodeKind::kEdge);

  // Local host: single port, leading straight to the host.
  EXPECT_EQ(fib.NextHopPorts(edge, 0).size(), 1u);
  // Remote pod host (last host): K/2 uplinks.
  const HostId remote = static_cast<HostId>(t.num_hosts() - 1);
  EXPECT_EQ(fib.NextHopPorts(edge, remote).size(), static_cast<size_t>(k / 2));
}

TEST(FibTest, CoreHasSingleDownPathPerHost) {
  const Topology t = BuildPaperFatTree();
  const Fib fib = Fib::Compute(t);
  for (int n = 0; n < t.num_nodes(); ++n) {
    if (t.node(n).kind != NodeKind::kCore) {
      continue;
    }
    for (HostId dst = 0; dst < t.num_hosts(); dst += 13) {
      EXPECT_EQ(fib.NextHopPorts(n, dst).size(), 1u);
    }
  }
}

TEST(FibTest, RoutesNeverTraverseHosts) {
  const Topology t = BuildEmulabTestbed();
  const Fib fib = Fib::Compute(t);
  for (HostId dst = 0; dst < t.num_hosts(); ++dst) {
    for (int n = 0; n < t.num_nodes(); ++n) {
      if (!IsSwitchKind(t.node(n).kind)) {
        continue;
      }
      for (uint16_t port : fib.NextHopPorts(n, dst)) {
        const int neighbor = t.ports(n)[port].neighbor;
        // A switch's next hop may be a host only if it IS the destination.
        if (!IsSwitchKind(t.node(neighbor).kind)) {
          EXPECT_EQ(t.node(neighbor).host_id, dst);
        }
      }
    }
  }
}

TEST(FibTest, EcmpPortIsStablePerFlow) {
  const Topology t = BuildPaperFatTree();
  const Fib fib = Fib::Compute(t);
  const int host0_node = t.host_node(0);
  const int edge = t.ports(host0_node)[0].neighbor;
  const HostId remote = static_cast<HostId>(t.num_hosts() - 1);
  for (FlowId flow = 1; flow < 50; ++flow) {
    const uint16_t first = fib.EcmpPort(edge, remote, flow);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(fib.EcmpPort(edge, remote, flow), first);
    }
  }
}

TEST(FibTest, EcmpSpreadsFlows) {
  const Topology t = BuildPaperFatTree();
  const Fib fib = Fib::Compute(t);
  const int host0_node = t.host_node(0);
  const int edge = t.ports(host0_node)[0].neighbor;
  const HostId remote = static_cast<HostId>(t.num_hosts() - 1);
  std::set<uint16_t> ports_used;
  for (FlowId flow = 1; flow < 200; ++flow) {
    ports_used.insert(fib.EcmpPort(edge, remote, flow));
  }
  // 4 equal-cost uplinks; 200 flows should hit all of them.
  EXPECT_EQ(ports_used.size(), 4u);
}

TEST(FibTest, EcmpPicksOnlyFromNextHopSet) {
  const Topology t = BuildPaperFatTree();
  const Fib fib = Fib::Compute(t);
  for (int n = 0; n < t.num_nodes(); n += 7) {
    if (!IsSwitchKind(t.node(n).kind)) {
      continue;
    }
    for (HostId dst = 0; dst < t.num_hosts(); dst += 31) {
      const auto& set = fib.NextHopPorts(n, dst);
      for (FlowId flow = 1; flow < 20; ++flow) {
        const uint16_t port = fib.EcmpPort(n, dst, flow);
        EXPECT_NE(std::find(set.begin(), set.end(), port), set.end());
      }
    }
  }
}

TEST(FibTest, LinearTopologyRoutesAlongChain) {
  const Topology t = BuildLinear(5, 1);
  const Fib fib = Fib::Compute(t);
  // Switch 0 to host at switch 4: distance 5 (4 switch hops + host link).
  EXPECT_EQ(fib.Distance(0, 4), 5);
  EXPECT_EQ(fib.NextHopPorts(0, 4).size(), 1u);
}

}  // namespace
}  // namespace dibs
