#include "src/topo/builders.h"

#include <gtest/gtest.h>

namespace dibs {
namespace {

// Parameterized over K: fat-tree structural invariants.
class FatTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeSweep, StructuralInvariants) {
  const int k = GetParam();
  FatTreeOptions opts;
  opts.k = k;
  const Topology t = BuildFatTree(opts);

  EXPECT_EQ(t.num_hosts(), k * k * k / 4);
  // Switches: k pods * k switches + (k/2)^2 cores.
  EXPECT_EQ(t.num_switches(), k * k + (k / 2) * (k / 2));
  // Every switch has exactly k ports; every host exactly 1.
  int edges = 0;
  int aggrs = 0;
  int cores = 0;
  for (const TopoNode& n : t.nodes()) {
    if (n.kind == NodeKind::kHost) {
      EXPECT_EQ(t.ports(n.id).size(), 1u);
      continue;
    }
    EXPECT_EQ(t.ports(n.id).size(), static_cast<size_t>(k)) << n.name;
    edges += n.kind == NodeKind::kEdge ? 1 : 0;
    aggrs += n.kind == NodeKind::kAggregation ? 1 : 0;
    cores += n.kind == NodeKind::kCore ? 1 : 0;
  }
  EXPECT_EQ(edges, k * k / 2);
  EXPECT_EQ(aggrs, k * k / 2);
  EXPECT_EQ(cores, k * k / 4);
}

TEST_P(FatTreeSweep, DiameterIsSixHostHops) {
  FatTreeOptions opts;
  opts.k = GetParam();
  // host-edge-aggr-core-aggr-edge-host = 6 links.
  EXPECT_EQ(BuildFatTree(opts).HostDiameter(), 6);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeSweep, ::testing::Values(2, 4, 6, 8));

TEST(FatTreeTest, PaperFatTreeIs128Hosts) {
  const Topology t = BuildPaperFatTree();
  EXPECT_EQ(t.num_hosts(), 128);
  EXPECT_EQ(t.num_switches(), 80);
}

TEST(FatTreeTest, OversubscriptionLowersFabricRates) {
  FatTreeOptions opts;
  opts.k = 4;
  opts.oversubscription = 4.0;
  const Topology t = BuildFatTree(opts);
  for (const TopoLink& l : t.links()) {
    const bool host_link = t.node(l.node_a).kind == NodeKind::kHost ||
                           t.node(l.node_b).kind == NodeKind::kHost;
    if (host_link) {
      EXPECT_EQ(l.rate_bps, opts.host_rate_bps);
    } else {
      EXPECT_EQ(l.rate_bps, opts.host_rate_bps / 4);
    }
  }
}

TEST(FatTreeTest, PodAssignments) {
  FatTreeOptions opts;
  opts.k = 4;
  const Topology t = BuildFatTree(opts);
  for (const TopoNode& n : t.nodes()) {
    if (n.kind == NodeKind::kCore) {
      EXPECT_EQ(n.pod, -1);
    } else {
      EXPECT_GE(n.pod, 0);
      EXPECT_LT(n.pod, 4);
    }
  }
}

TEST(EmulabTest, MatchesPaperTestbed) {
  const Topology t = BuildEmulabTestbed();
  EXPECT_EQ(t.num_hosts(), 6);
  EXPECT_EQ(t.num_switches(), 5);
  int edge_count = 0;
  for (const TopoNode& n : t.nodes()) {
    if (n.kind == NodeKind::kEdge) {
      ++edge_count;
      // 2 hosts + 2 aggregation uplinks.
      EXPECT_EQ(t.ports(n.id).size(), 4u);
    }
    if (n.kind == NodeKind::kAggregation) {
      EXPECT_EQ(t.ports(n.id).size(), 3u);
    }
  }
  EXPECT_EQ(edge_count, 3);
  // host-edge-aggr-edge-host = 4.
  EXPECT_EQ(t.HostDiameter(), 4);
}

TEST(LeafSpineTest, Structure) {
  LeafSpineOptions opts;
  opts.leaves = 3;
  opts.spines = 2;
  opts.hosts_per_leaf = 4;
  const Topology t = BuildLeafSpine(opts);
  EXPECT_EQ(t.num_hosts(), 12);
  EXPECT_EQ(t.num_switches(), 5);
  EXPECT_EQ(t.HostDiameter(), 4);
}

TEST(LinearTest, Structure) {
  const Topology t = BuildLinear(4, 2);
  EXPECT_EQ(t.num_hosts(), 8);
  EXPECT_EQ(t.num_switches(), 4);
  // End-to-end: host + 3 switch hops + host.
  EXPECT_EQ(t.HostDiameter(), 5);
}

TEST(JellyFishTest, RegularAndConnected) {
  JellyFishOptions opts;
  opts.switches = 12;
  opts.degree = 4;
  opts.hosts_per_switch = 2;
  const Topology t = BuildJellyFish(opts);
  EXPECT_EQ(t.num_hosts(), 24);
  EXPECT_EQ(t.num_switches(), 12);
  for (const TopoNode& n : t.nodes()) {
    if (IsSwitchKind(n.kind)) {
      EXPECT_EQ(t.ports(n.id).size(), static_cast<size_t>(opts.degree + opts.hosts_per_switch));
    }
  }
  // Connectivity: BFS from switch 0 reaches every node.
  const auto dist = t.BfsDistances(0);
  for (int d : dist) {
    EXPECT_GE(d, 0);
  }
}

TEST(JellyFishTest, SeedsGiveDifferentWirings) {
  JellyFishOptions a;
  a.seed = 1;
  JellyFishOptions b;
  b.seed = 2;
  const Topology ta = BuildJellyFish(a);
  const Topology tb = BuildJellyFish(b);
  bool any_difference = false;
  for (int i = 0; i < ta.num_links() && i < tb.num_links(); ++i) {
    if (ta.link(i).node_a != tb.link(i).node_a || ta.link(i).node_b != tb.link(i).node_b) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace dibs
