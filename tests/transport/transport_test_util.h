// Shared fixture for transport tests: a small network plus a FlowManager and
// completion bookkeeping.

#ifndef TESTS_TRANSPORT_TRANSPORT_TEST_UTIL_H_
#define TESTS_TRANSPORT_TRANSPORT_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/device/switch_node.h"
#include "src/topo/builders.h"
#include "src/transport/flow_manager.h"

namespace dibs {

class TransportHarness {
 public:
  TransportHarness(Topology topo, NetworkConfig net_cfg, TransportKind kind,
                   TcpConfig tcp_cfg = TcpConfig(), uint64_t seed = 1)
      : sim_(std::make_unique<Simulator>(seed)),
        net_(std::make_unique<Network>(sim_.get(), std::move(topo), net_cfg)),
        flows_(std::make_unique<FlowManager>(net_.get(), kind, tcp_cfg)) {}

  FlowId StartFlow(HostId src, HostId dst, uint64_t bytes,
                   TrafficClass cls = TrafficClass::kBackground) {
    return flows_->StartFlow(src, dst, bytes, cls,
                             [this](const FlowResult& r) { results_.push_back(r); });
  }

  // Runs until idle (all flows complete or stall forever).
  void Run() { sim_->Run(); }
  void RunUntil(Time t) { sim_->RunUntil(t); }

  // Max over time of the deepest switch queue, sampled every 10us until `end`.
  size_t TrackMaxQueueDepth(Time end) {
    max_depth_ = 0;
    SampleDepth(end);
    return max_depth_;  // final value valid after Run()/RunUntil(end)
  }

  Simulator& sim() { return *sim_; }
  Network& net() { return *net_; }
  FlowManager& flows() { return *flows_; }
  const std::vector<FlowResult>& results() const { return results_; }

  const FlowResult* ResultFor(FlowId id) const {
    for (const FlowResult& r : results_) {
      if (r.spec.id == id) {
        return &r;
      }
    }
    return nullptr;
  }

  size_t max_queue_depth() const { return max_depth_; }

 private:
  void SampleDepth(Time end) {
    for (int sw : net_->switch_ids()) {
      SwitchNode& node = net_->switch_at(sw);
      for (uint16_t i = 0; i < node.num_ports(); ++i) {
        max_depth_ = std::max(max_depth_, node.port(i).queue().size_packets());
      }
    }
    if (sim_->Now() + Time::Micros(10) <= end) {
      sim_->Schedule(Time::Micros(10), [this, end] { SampleDepth(end); });
    }
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<FlowManager> flows_;
  std::vector<FlowResult> results_;
  size_t max_depth_ = 0;
};

}  // namespace dibs

#endif  // TESTS_TRANSPORT_TRANSPORT_TEST_UTIL_H_
