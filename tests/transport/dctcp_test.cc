#include <gtest/gtest.h>

#include "tests/transport/transport_test_util.h"

namespace dibs {
namespace {

NetworkConfig DctcpNet() {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 100;
  cfg.ecn_threshold_packets = 20;
  return cfg;
}

TEST(DctcpTest, LongFlowsSeeMarks) {
  TransportHarness h(BuildEmulabTestbed(), DctcpNet(), TransportKind::kDctcp);
  // Two hosts on different racks hammer one receiver; the shared bottleneck
  // queue must exceed K and generate marks.
  const FlowId a = h.StartFlow(0, 5, 2000000);
  const FlowId b = h.StartFlow(2, 5, 2000000);
  h.Run();
  ASSERT_EQ(h.results().size(), 2u);
  uint64_t marked = 0;
  for (const FlowResult& r : h.results()) {
    marked += r.marked_acks;
  }
  EXPECT_GT(marked, 0u);
  (void)a;
  (void)b;
}

TEST(DctcpTest, AlphaStaysInUnitInterval) {
  TransportHarness h(BuildEmulabTestbed(), DctcpNet(), TransportKind::kDctcp);
  const FlowId a = h.StartFlow(0, 5, 5000000);
  h.StartFlow(2, 5, 5000000);
  // Sample alpha during the run.
  double max_alpha = 0;
  double min_alpha = 1;
  for (int i = 1; i <= 40; ++i) {
    h.RunUntil(Time::Millis(i));
    TcpSender* sender = h.flows().tcp_sender(a);
    if (sender == nullptr || sender->done()) {
      break;
    }
    max_alpha = std::max(max_alpha, sender->dctcp_alpha());
    min_alpha = std::min(min_alpha, sender->dctcp_alpha());
  }
  h.Run();
  EXPECT_GE(min_alpha, 0.0);
  EXPECT_LE(max_alpha, 1.0);
  EXPECT_GT(max_alpha, 0.0);  // congestion happened, alpha moved
}

TEST(DctcpTest, KeepsQueuesShallowerThanPlainTcp) {
  // Same offered load, same buffers; DCTCP's ECN response must keep the
  // bottleneck queue substantially shorter than loss-based TCP does.
  auto max_depth = [](TransportKind kind, bool ecn) {
    NetworkConfig net_cfg;
    net_cfg.switch_buffer_packets = 200;
    net_cfg.ecn_threshold_packets = ecn ? 20 : 0;
    TcpConfig tcp_cfg;
    tcp_cfg.ecn_enabled = ecn;
    tcp_cfg.cc = ecn ? CongestionControl::kDctcp : CongestionControl::kNewReno;
    TransportHarness h(BuildEmulabTestbed(), net_cfg, kind, tcp_cfg);
    h.StartFlow(0, 5, 3000000);
    h.StartFlow(2, 5, 3000000);
    h.TrackMaxQueueDepth(Time::Millis(40));
    h.RunUntil(Time::Millis(40));
    return h.max_queue_depth();
  };
  const size_t dctcp_depth = max_depth(TransportKind::kDctcp, true);
  const size_t tcp_depth = max_depth(TransportKind::kTcp, false);
  EXPECT_LT(dctcp_depth, tcp_depth);
  // DCTCP queues hover near K=20; allow slack for the slow-start overshoot
  // before the first per-window cut takes effect.
  EXPECT_LE(dctcp_depth, 100u);
}

TEST(DctcpTest, NoDropsAtModerateLoadWithEcn) {
  TransportHarness h(BuildEmulabTestbed(), DctcpNet(), TransportKind::kDctcp);
  h.StartFlow(0, 5, 1000000);
  h.StartFlow(2, 5, 1000000);
  h.Run();
  EXPECT_EQ(h.net().total_drops(), 0u);
  EXPECT_EQ(h.results().size(), 2u);
}

TEST(DctcpTest, DibsHostConfigDisablesFastRetransmit) {
  const TcpConfig cfg = TcpConfig::DibsDefault();
  EXPECT_EQ(cfg.dupack_threshold, 0u);  // §4: fast retransmit disabled
  EXPECT_EQ(cfg.cc, CongestionControl::kDctcp);
  // End-to-end: with the DIBS network + host config, a lossless incast must
  // not generate retransmissions despite heavy detour reordering.
  NetworkConfig net_cfg = DctcpNet();
  net_cfg.detour_policy = "random";
  TransportHarness h(BuildEmulabTestbed(), net_cfg, TransportKind::kDctcp, cfg);
  for (HostId src = 0; src < 5; ++src) {
    h.StartFlow(src, 5, 100000, TrafficClass::kQuery);
  }
  h.Run();
  EXPECT_EQ(h.results().size(), 5u);
  EXPECT_EQ(h.net().total_drops(), 0u);
  uint32_t retx = 0;
  for (const FlowResult& r : h.results()) {
    retx += r.retransmits;
  }
  EXPECT_EQ(retx, 0u);  // no drops + reordering below the dup-ACK threshold
}

TEST(DctcpTest, EcnEchoPathDeliversMarks) {
  // Two senders share host 5's downlink, so the queue must exceed the tiny
  // threshold and the senders must observe ECE. (A single flow over equal-
  // rate links never builds a queue and would see no marks.)
  NetworkConfig net_cfg;
  net_cfg.switch_buffer_packets = 100;
  net_cfg.ecn_threshold_packets = 2;
  TransportHarness h(BuildEmulabTestbed(), net_cfg, TransportKind::kDctcp);
  const FlowId id = h.StartFlow(0, 5, 500000);
  h.StartFlow(2, 5, 500000);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->marked_acks, 0u);
}

TEST(DctcpTest, WindowCutIsProportionalNotBrutal) {
  // With moderate marking DCTCP should not collapse to cwnd=1 (that is the
  // timeout response); ensure the flow sustains a multi-segment window.
  TransportHarness h(BuildEmulabTestbed(), DctcpNet(), TransportKind::kDctcp);
  const FlowId id = h.StartFlow(0, 5, 8000000);
  h.StartFlow(2, 5, 8000000);
  double min_cwnd_after_warmup = 1e9;
  for (int i = 10; i <= 50; i += 5) {
    h.RunUntil(Time::Millis(i));
    TcpSender* sender = h.flows().tcp_sender(id);
    if (sender == nullptr || sender->done()) {
      break;
    }
    min_cwnd_after_warmup = std::min(min_cwnd_after_warmup, sender->cwnd());
  }
  h.Run();
  EXPECT_GE(min_cwnd_after_warmup, 2.0);
}

}  // namespace
}  // namespace dibs
