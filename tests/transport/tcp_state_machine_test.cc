// White-box TcpSender state-machine tests: instead of a full receiver, the
// test captures data packets at the destination host and crafts ACKs by hand,
// exercising window growth, dup-ACK logic, partial-ACK recovery, RTO backoff,
// Karn's rule, and the DCTCP alpha update numerically.

#include "src/transport/tcp_sender.h"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <vector>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/topo/builders.h"

namespace dibs {
namespace {

class SenderHarness {
 public:
  explicit SenderHarness(TcpConfig config, uint64_t flow_bytes = 1000000)
      : sim_(1), net_(&sim_, TwoHostTopology(), NetworkConfig{}) {
    spec_.id = 77;
    spec_.src = 0;
    spec_.dst = 1;
    spec_.size_bytes = flow_bytes;
    spec_.traffic_class = TrafficClass::kQuery;
    spec_.start_time = sim_.Now();
    sender_ = std::make_unique<TcpSender>(&net_, spec_, config, [this] { done_ = true; });
    // Capture data at the destination instead of running a receiver.
    net_.host(1).RegisterFlowReceiver(
        spec_.id, [this](Packet&& p) { received_.push_back(std::move(p)); });
    // Deliver hand-crafted ACKs to the sender.
    net_.host(0).RegisterFlowReceiver(
        spec_.id, [this](Packet&& p) { sender_->OnAck(std::move(p)); });
  }

  // Sends a cumulative ACK from the receiver host through the network.
  void SendAck(uint32_t ack_seq, bool ece = false) {
    Packet ack;
    ack.uid = net_.NextPacketUid();
    ack.src = 1;
    ack.dst = 0;
    ack.size_bytes = kAckBytes;
    ack.ttl = 64;
    ack.flow = spec_.id;
    ack.is_ack = true;
    ack.ack_seq = ack_seq;
    ack.ece = ece;
    net_.host(1).Send(std::move(ack));
    sim_.RunFor(Time::Micros(50));  // let it propagate (26us + slack)
  }

  // Runs until the wire is quiet (all sent data captured).
  void Settle() { sim_.RunFor(Time::Millis(2)); }

  static Topology TwoHostTopology() {
    Topology t;
    const int sw = t.AddNode(NodeKind::kSwitch, "sw");
    for (int i = 0; i < 2; ++i) {
      const int h = t.AddHost("h" + std::to_string(i));
      t.AddLink(h, sw, kGbps, Time::Micros(1));
    }
    return t;
  }

  Simulator sim_;
  Network net_;
  FlowSpec spec_;
  std::unique_ptr<TcpSender> sender_;
  std::deque<Packet> received_;
  bool done_ = false;
};

TcpConfig NewRenoConfig(uint32_t dupack = 3) {
  TcpConfig c;
  c.cc = CongestionControl::kNewReno;
  c.ecn_enabled = false;
  c.dupack_threshold = dupack;
  c.init_cwnd_segments = 4;
  c.min_rto = Time::Millis(10);
  return c;
}

TEST(TcpStateMachine, InitialBurstIsExactlyInitCwnd) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  EXPECT_EQ(h.received_.size(), 4u);
  EXPECT_EQ(h.sender_->snd_nxt(), 4u);
  EXPECT_EQ(h.sender_->snd_una(), 0u);
}

TEST(TcpStateMachine, SlowStartDoublesPerWindow) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  // ACK the full initial window: cwnd 4 -> 8.
  h.SendAck(4);
  EXPECT_DOUBLE_EQ(h.sender_->cwnd(), 8.0);
  h.Settle();
  EXPECT_EQ(h.sender_->snd_nxt(), 12u);  // 4 acked + 8 in flight
}

TEST(TcpStateMachine, DupAcksTriggerFastRetransmitAtThreshold) {
  SenderHarness h(NewRenoConfig(3));
  h.sender_->Start();
  h.Settle();
  const size_t sent_before = h.received_.size();
  h.SendAck(0);  // dup 1 (snd_una stays 0)
  h.SendAck(0);  // dup 2
  EXPECT_EQ(h.sender_->retransmits(), 0u);
  h.SendAck(0);  // dup 3 -> fast retransmit of segment 0
  h.Settle();
  EXPECT_EQ(h.sender_->retransmits(), 1u);
  EXPECT_GT(h.received_.size(), sent_before);
  EXPECT_EQ(h.received_.back().seq, 0u);
}

TEST(TcpStateMachine, DupAcksIgnoredWhenFastRetransmitDisabled) {
  SenderHarness h(NewRenoConfig(/*dupack=*/0));
  h.sender_->Start();
  h.Settle();
  for (int i = 0; i < 20; ++i) {
    h.SendAck(0);
  }
  EXPECT_EQ(h.sender_->retransmits(), 0u);
}

TEST(TcpStateMachine, FastRetransmitHalvesWindowOnce) {
  SenderHarness h(NewRenoConfig(3));
  h.sender_->Start();
  h.Settle();
  h.SendAck(2);  // advance a little; cwnd 4 -> 6, flight = snd_nxt - 2
  h.Settle();
  const double flight = h.sender_->snd_nxt() - 2.0;
  for (int i = 0; i < 3; ++i) {
    h.SendAck(2);
  }
  EXPECT_NEAR(h.sender_->ssthresh(), std::max(flight / 2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(h.sender_->cwnd(), h.sender_->ssthresh());
  // Further dup ACKs must not halve again.
  const double after = h.sender_->cwnd();
  for (int i = 0; i < 5; ++i) {
    h.SendAck(2);
  }
  EXPECT_DOUBLE_EQ(h.sender_->cwnd(), after);
}

TEST(TcpStateMachine, PartialAckRetransmitsNextHole) {
  SenderHarness h(NewRenoConfig(3));
  h.sender_->Start();
  h.Settle();
  // Enter recovery at snd_una=0.
  for (int i = 0; i < 3; ++i) {
    h.SendAck(0);
  }
  h.Settle();
  const uint32_t retx_before = h.sender_->retransmits();
  // Partial ACK: hole at 0 filled, next hole at 2 (< recovery point).
  h.SendAck(2);
  h.Settle();
  EXPECT_EQ(h.sender_->retransmits(), retx_before + 1);
  EXPECT_EQ(h.received_.back().seq, 2u);
}

TEST(TcpStateMachine, RtoCollapsesWindowToOne) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  // No ACKs at all: RTO fires at minRTO (10ms).
  h.sim_.RunFor(Time::Millis(15));
  EXPECT_EQ(h.sender_->timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.sender_->cwnd(), 1.0);
  EXPECT_EQ(h.received_.back().seq, 0u);  // retransmitted head
}

TEST(TcpStateMachine, RtoBacksOffExponentially) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  // First RTO ~10ms, second ~20ms, third ~40ms.
  h.sim_.RunFor(Time::Millis(12));
  EXPECT_EQ(h.sender_->timeouts(), 1u);
  h.sim_.RunFor(Time::Millis(15));  // t=27ms: second fired (10+20=30 > 27? allow window)
  h.sim_.RunFor(Time::Millis(10));  // t=37ms
  EXPECT_GE(h.sender_->timeouts(), 2u);
  const Time rto_now = h.sender_->current_rto();
  EXPECT_GE(rto_now, Time::Millis(40));
}

TEST(TcpStateMachine, NewAckResetsBackoff) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  h.sim_.RunFor(Time::Millis(35));  // a couple of timeouts
  EXPECT_GE(h.sender_->timeouts(), 2u);
  h.SendAck(1);
  EXPECT_LE(h.sender_->current_rto(), Time::Millis(10) + Time::Millis(1));
}

TEST(TcpStateMachine, SustainedBlackholeClimbsRtoLadderToCapThenResets) {
  // A real outage, not hand-dropped ACKs: the sender's NIC link goes
  // administratively down (fault model), so every retransmission blackholes
  // and the RTO must walk the full exponential ladder up to max_rto.
  TcpConfig cfg = NewRenoConfig();
  cfg.max_rto = Time::Millis(80);
  SenderHarness h(cfg);
  h.sender_->Start();
  h.Settle();
  ASSERT_EQ(h.received_.size(), 4u);  // initial burst arrived before the fault
  h.net_.SetLinkAdminState(0, false);

  // Record current_rto() after each of the first six timeouts.
  std::vector<Time> ladder;
  uint32_t seen = h.sender_->timeouts();
  while (ladder.size() < 6) {
    ASSERT_LT(h.sim_.Now(), Time::Seconds(1)) << "RTO ladder never climbed";
    h.sim_.RunFor(Time::Millis(2));
    if (h.sender_->timeouts() > seen) {
      seen = h.sender_->timeouts();
      ladder.push_back(h.sender_->current_rto());
    }
  }
  // 10ms doubles per timeout until the 80ms cap, then stays pinned there.
  EXPECT_EQ(ladder[0], Time::Millis(20));
  EXPECT_EQ(ladder[1], Time::Millis(40));
  EXPECT_EQ(ladder[2], Time::Millis(80));
  EXPECT_EQ(ladder[3], Time::Millis(80));
  EXPECT_EQ(ladder[4], Time::Millis(80));
  EXPECT_EQ(ladder[5], Time::Millis(80));
  // Nothing got through during the outage.
  EXPECT_EQ(h.received_.size(), 4u);

  // Repair the link; the first ACK of new data resets the backoff, and
  // Karn's rule keeps the retransmitted segments out of the RTT estimate.
  h.net_.SetLinkAdminState(0, true);
  h.SendAck(1);
  EXPECT_LE(h.sender_->current_rto(), Time::Millis(10) + Time::Millis(1));
}

TEST(TcpStateMachine, CompletionFiresExactlyOnce) {
  SenderHarness h(NewRenoConfig(), /*flow_bytes=*/kMaxSegmentBytes * 3);
  h.sender_->Start();
  h.Settle();
  h.SendAck(3);
  EXPECT_TRUE(h.done_);
  EXPECT_TRUE(h.sender_->done());
  // Stray duplicate/final ACKs after completion are harmless.
  h.SendAck(3);
  h.SendAck(3);
  EXPECT_TRUE(h.sender_->done());
}

TEST(TcpStateMachine, CumulativeAckJumpsMultipleSegments) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  h.SendAck(4);  // covers all four at once
  EXPECT_EQ(h.sender_->snd_una(), 4u);
  EXPECT_DOUBLE_EQ(h.sender_->cwnd(), 8.0);  // slow start credited all 4
}

TcpConfig DctcpCfg() {
  TcpConfig c;
  c.cc = CongestionControl::kDctcp;
  c.ecn_enabled = true;
  c.dupack_threshold = 0;
  c.init_cwnd_segments = 4;
  c.dctcp_g = 1.0 / 16.0;
  return c;
}

TEST(TcpStateMachine, DctcpAlphaFollowsEwma) {
  SenderHarness h(DctcpCfg());
  h.sender_->Start();
  h.Settle();
  EXPECT_DOUBLE_EQ(h.sender_->dctcp_alpha(), 0.0);
  // Window 1 fully marked: after the window boundary, alpha = g * 1.
  h.SendAck(1, /*ece=*/true);  // crosses dctcp_window_end_ = 0
  const double g = 1.0 / 16.0;
  EXPECT_NEAR(h.sender_->dctcp_alpha(), g, 1e-9);
}

TEST(TcpStateMachine, DctcpUnmarkedWindowDecaysAlpha) {
  SenderHarness h(DctcpCfg());
  h.sender_->Start();
  h.Settle();
  h.SendAck(1, true);  // alpha = g
  const double alpha1 = h.sender_->dctcp_alpha();
  h.Settle();
  // ACK everything outstanding without marks; next window boundary decays.
  const uint32_t nxt = h.sender_->snd_nxt();
  h.SendAck(nxt, false);
  h.Settle();
  h.SendAck(h.sender_->snd_nxt(), false);
  EXPECT_LT(h.sender_->dctcp_alpha(), alpha1);
}

TEST(TcpStateMachine, DctcpCutIsProportionalToAlpha) {
  SenderHarness h(DctcpCfg());
  h.sender_->Start();
  h.Settle();
  const double cwnd_before = h.sender_->cwnd();  // 4
  h.SendAck(1, true);
  // cwnd' ~ (cwnd * (1 - alpha/2)) + growth credit; must be far above
  // the NewReno halving and below cwnd_before + acked.
  const double alpha = h.sender_->dctcp_alpha();
  EXPECT_GT(h.sender_->cwnd(), cwnd_before * (1 - alpha));  // gentle cut
  EXPECT_LE(h.sender_->cwnd(), cwnd_before + 1.0);
}

TEST(TcpStateMachine, KarnsRuleSkipsRetransmittedSegments) {
  SenderHarness h(NewRenoConfig());
  h.sender_->Start();
  h.Settle();
  h.sim_.RunFor(Time::Millis(12));  // RTO: segment 0 retransmitted
  EXPECT_EQ(h.sender_->timeouts(), 1u);
  // ACK only segment 0 (retransmitted): no RTT sample should be taken, so
  // the RTO stays at the configured floor rather than adapting to a bogus
  // 12ms+ sample.
  h.SendAck(1);
  EXPECT_LE(h.sender_->current_rto(), Time::Millis(10) + Time::Millis(1));
}

// Property sweep: for any initial window, the first burst never exceeds it.
class InitWindowSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(InitWindowSweep, FirstBurstBounded) {
  TcpConfig cfg = NewRenoConfig();
  cfg.init_cwnd_segments = GetParam();
  SenderHarness h(cfg);
  h.sender_->Start();
  h.Settle();
  EXPECT_EQ(h.received_.size(), static_cast<size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Windows, InitWindowSweep, ::testing::Values(1, 2, 4, 10, 16, 64));

}  // namespace
}  // namespace dibs
