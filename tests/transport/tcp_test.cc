#include "src/transport/tcp_sender.h"

#include <gtest/gtest.h>

#include "tests/transport/transport_test_util.h"

namespace dibs {
namespace {

TEST(TcpTest, SingleFlowCompletes) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, 100000);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->spec.size_bytes, 100000u);
  EXPECT_EQ(r->segments, SegmentsForBytes(100000));
  EXPECT_GT(r->fct, Time::Zero());
  EXPECT_EQ(r->retransmits, 0u);
  EXPECT_EQ(r->timeouts, 0u);
}

TEST(TcpTest, FctIsAtLeastTheIdealTransferTime) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const uint64_t bytes = 1000000;
  const FlowId id = h.StartFlow(0, 5, bytes);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  // 1MB at 1Gbps is 8ms of pure serialization; FCT must exceed it.
  EXPECT_GT(r->fct, Time::Millis(8));
  EXPECT_LT(r->fct, Time::Millis(40));  // and not be wildly slow
}

TEST(TcpTest, SingleSegmentFlow) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, 500);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->segments, 1u);
}

TEST(TcpTest, ZeroByteFlowStillCompletes) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, 0);
  h.Run();
  EXPECT_NE(h.ResultFor(id), nullptr);
}

TEST(TcpTest, ExactMultipleOfMssFlow) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, static_cast<uint64_t>(kMaxSegmentBytes) * 7);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->segments, 7u);
}

TEST(TcpTest, ManyParallelFlowsAllComplete) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  for (HostId src = 0; src < 5; ++src) {
    for (int i = 0; i < 4; ++i) {
      h.StartFlow(src, 5, 50000);
    }
  }
  h.Run();
  EXPECT_EQ(h.results().size(), 20u);
  EXPECT_EQ(h.flows().flows_completed(), 20u);
}

TEST(TcpTest, InitialWindowBoundsFirstBurst) {
  TcpConfig cfg;
  cfg.init_cwnd_segments = 10;
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp, cfg);
  h.StartFlow(0, 5, 1000000);
  // Before the first ACK can arrive (RTT ~ 50us+), at most 10 data packets
  // may have left the NIC.
  h.RunUntil(Time::Micros(30));
  EXPECT_LE(h.net().host(0).nic().packets_sent(), 10u);
  h.Run();
  EXPECT_EQ(h.results().size(), 1u);
}

TEST(TcpTest, SlowStartGrowsWindow) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, 3000000);
  h.RunUntil(Time::Millis(3));
  TcpSender* sender = h.flows().tcp_sender(id);
  ASSERT_NE(sender, nullptr);
  EXPECT_GT(sender->cwnd(), 10.0);
  EXPECT_GT(sender->snd_una(), 0u);
}

TEST(TcpTest, LossRecoveryViaFastRetransmit) {
  NetworkConfig net_cfg;
  net_cfg.switch_buffer_packets = 8;
  net_cfg.ecn_threshold_packets = 0;  // no ECN: force actual drops
  TcpConfig tcp_cfg;
  tcp_cfg.dupack_threshold = 3;
  tcp_cfg.ecn_enabled = false;
  tcp_cfg.cc = CongestionControl::kNewReno;
  TransportHarness h(BuildEmulabTestbed(), net_cfg, TransportKind::kTcp, tcp_cfg);
  // Four senders converge on host 5: the 8-packet buffer must overflow.
  std::vector<FlowId> ids;
  for (HostId src = 0; src < 4; ++src) {
    ids.push_back(h.StartFlow(src, 5, 200000));
  }
  h.Run();
  EXPECT_EQ(h.results().size(), 4u);
  uint32_t total_retx = 0;
  for (const FlowResult& r : h.results()) {
    total_retx += r.retransmits;
  }
  EXPECT_GT(total_retx, 0u);
  EXPECT_GT(h.net().total_drops(), 0u);
}

TEST(TcpTest, FastRetransmitDisabledRecoversViaTimeout) {
  NetworkConfig net_cfg;
  net_cfg.switch_buffer_packets = 8;
  net_cfg.ecn_threshold_packets = 0;
  TcpConfig tcp_cfg;
  tcp_cfg.dupack_threshold = 0;  // DIBS host setting
  tcp_cfg.ecn_enabled = false;
  tcp_cfg.cc = CongestionControl::kNewReno;
  tcp_cfg.min_rto = Time::Millis(1);
  TransportHarness h(BuildEmulabTestbed(), net_cfg, TransportKind::kTcp, tcp_cfg);
  for (HostId src = 0; src < 4; ++src) {
    h.StartFlow(src, 5, 200000);
  }
  h.Run();
  EXPECT_EQ(h.results().size(), 4u);
  uint32_t total_timeouts = 0;
  for (const FlowResult& r : h.results()) {
    total_timeouts += r.timeouts;
  }
  EXPECT_GT(total_timeouts, 0u);
}

TEST(TcpTest, RetransmittedDataIsNotDoubleCounted) {
  NetworkConfig net_cfg;
  net_cfg.switch_buffer_packets = 6;
  net_cfg.ecn_threshold_packets = 0;
  TcpConfig tcp_cfg;
  tcp_cfg.ecn_enabled = false;
  tcp_cfg.cc = CongestionControl::kNewReno;
  TransportHarness h(BuildEmulabTestbed(), net_cfg, TransportKind::kTcp, tcp_cfg);
  std::vector<FlowId> ids;
  for (HostId src = 0; src < 4; ++src) {
    ids.push_back(h.StartFlow(src, 5, 150000));
  }
  h.Run();
  for (FlowId id : ids) {
    const FlowResult* r = h.ResultFor(id);
    ASSERT_NE(r, nullptr);
    TcpReceiver* recv = h.flows().receiver(id);
    ASSERT_NE(recv, nullptr);
    EXPECT_EQ(recv->segments_received(), r->segments);
    EXPECT_TRUE(recv->complete());
  }
}

TEST(TcpTest, MinRtoRespected) {
  TcpConfig cfg;
  cfg.min_rto = Time::Millis(10);
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp, cfg);
  const FlowId id = h.StartFlow(0, 5, 4000000);
  h.RunUntil(Time::Millis(2));
  TcpSender* sender = h.flows().tcp_sender(id);
  ASSERT_NE(sender, nullptr);
  // RTT is tens of microseconds; the RTO must still be clamped to >= 10ms.
  EXPECT_GE(sender->current_rto(), Time::Millis(10));
}

TEST(TcpTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp,
                       TcpConfig(), /*seed=*/5);
    for (HostId src = 0; src < 4; ++src) {
      h.StartFlow(src, 5, 80000);
    }
    h.Run();
    std::vector<int64_t> fcts;
    for (const FlowResult& r : h.results()) {
      fcts.push_back(r.fct.nanos());
    }
    return fcts;
  };
  EXPECT_EQ(run(), run());
}

// Sweep flow sizes: every size completes and delivers exactly its bytes.
class FlowSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowSizeSweep, CompletesWithExactSegments) {
  TransportHarness h(BuildEmulabTestbed(), NetworkConfig{}, TransportKind::kTcp);
  const FlowId id = h.StartFlow(0, 5, GetParam());
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->segments, SegmentsForBytes(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(1, 100, 1459, 1460, 1461, 10000, 65536, 500000));

}  // namespace
}  // namespace dibs
