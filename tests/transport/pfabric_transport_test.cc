#include "src/transport/pfabric_sender.h"

#include <gtest/gtest.h>

#include "src/device/observer.h"
#include "tests/transport/transport_test_util.h"

namespace dibs {
namespace {

NetworkConfig PfabricNet() {
  NetworkConfig cfg;
  cfg.pfabric_queues = true;
  cfg.pfabric_buffer_packets = 24;
  cfg.ecn_threshold_packets = 0;
  return cfg;
}

TEST(PfabricTest, SingleFlowCompletes) {
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  const FlowId id = h.StartFlow(0, 5, 100000);
  h.Run();
  const FlowResult* r = h.ResultFor(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->segments, SegmentsForBytes(100000));
}

TEST(PfabricTest, PrioritiesDecreaseAlongFlow) {
  struct PriorityObserver : NetworkObserver {
    std::vector<std::pair<uint32_t, int64_t>> data;  // (seq, priority)
    void OnHostDeliver(HostId host, const Packet& p, Time at) override {
      if (!p.is_ack) {
        data.emplace_back(p.seq, p.priority);
      }
    }
  };
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  PriorityObserver obs;
  h.net().AddObserver(&obs);
  h.StartFlow(0, 5, 150000);
  h.Run();
  ASSERT_FALSE(obs.data.empty());
  for (const auto& [seq, priority] : obs.data) {
    // priority = (total_segments - seq) * MSS: strictly decreasing in seq.
    EXPECT_EQ(priority,
              static_cast<int64_t>(SegmentsForBytes(150000) - seq) * kMaxSegmentBytes);
  }
}

TEST(PfabricTest, ShortFlowPreemptsLongFlow) {
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  // Long flow saturates the path to host 5 first.
  h.StartFlow(0, 5, 5000000, TrafficClass::kBackground);
  h.sim().RunUntil(Time::Millis(5));
  // Now a short flow arrives from another rack.
  const FlowId short_id = h.StartFlow(2, 5, 20000, TrafficClass::kQuery);
  h.Run();
  const FlowResult* short_r = h.ResultFor(short_id);
  ASSERT_NE(short_r, nullptr);
  // 20KB unloaded takes ~0.2ms; with pFabric priority it must stay near that
  // despite the competing 5MB flow (which alone would take 40ms).
  EXPECT_LT(short_r->fct, Time::Millis(2));
}

TEST(PfabricTest, IncastWithEvictionsStillCompletes) {
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  for (HostId src = 0; src < 5; ++src) {
    h.StartFlow(src, 5, 100000, TrafficClass::kQuery);
  }
  h.Run();
  EXPECT_EQ(h.results().size(), 5u);
  uint32_t timeouts = 0;
  for (const FlowResult& r : h.results()) {
    timeouts += r.timeouts;
  }
  // 5 * ~12-segment windows into 24-packet queues: losses and timeouts are
  // expected, and the tiny RTO recovers them.
  EXPECT_GT(timeouts, 0u);
}

TEST(PfabricTest, TimeoutsRecoverLostTail) {
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  std::vector<FlowId> ids;
  for (HostId src = 0; src < 5; ++src) {
    ids.push_back(h.StartFlow(src, 5, 60000));
  }
  h.Run();
  for (FlowId id : ids) {
    TcpReceiver* recv = h.flows().receiver(id);
    ASSERT_NE(recv, nullptr);
    EXPECT_TRUE(recv->complete());
  }
}

TEST(PfabricTest, ProbeModeBoundsRetransmissionStorms) {
  // Heavy incast: retransmissions happen but must stay bounded relative to
  // flow size thanks to probe mode (window collapses to 1 after repeated
  // timeouts).
  TransportHarness h(BuildEmulabTestbed(), PfabricNet(), TransportKind::kPfabric);
  for (HostId src = 0; src < 5; ++src) {
    h.StartFlow(src, 5, 40000);
  }
  h.Run();
  uint32_t retx = 0;
  for (const FlowResult& r : h.results()) {
    retx += r.retransmits;
  }
  const uint32_t total_segments = 5 * SegmentsForBytes(40000);
  EXPECT_LT(retx, total_segments * 10);
}

}  // namespace
}  // namespace dibs
