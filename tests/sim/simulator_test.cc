#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace dibs {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), Time::Zero());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Time::Micros(30), [&] { order.push_back(3); });
  sim.Schedule(Time::Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Time::Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Time::Micros(30));
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Time::Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NowAdvancesDuringEvents) {
  Simulator sim;
  Time seen;
  sim.Schedule(Time::Millis(7), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, Time::Millis(7));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.Schedule(Time::Micros(1), chain);
    }
  };
  sim.Schedule(Time::Zero(), chain);
  sim.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), Time::Micros(4));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(Time::Micros(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelInvalidIdIsNoop) {
  Simulator sim;
  sim.Cancel(kInvalidEventId);
  sim.Cancel(999999);
  sim.Run();
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Time::Micros(1), [&] { order.push_back(1); });
  const EventId id = sim.Schedule(Time::Micros(2), [&] { order.push_back(2); });
  sim.Schedule(Time::Micros(3), [&] { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Time::Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Time::Micros(20), [&] { order.push_back(2); });
  sim.Schedule(Time::Micros(30), [&] { order.push_back(3); });
  sim.RunUntil(Time::Micros(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), Time::Micros(20));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator sim;
  sim.RunUntil(Time::Seconds(5));
  EXPECT_EQ(sim.Now(), Time::Seconds(5));
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(Time::Millis(5));
  sim.RunFor(Time::Millis(5));
  EXPECT_EQ(sim.Now(), Time::Millis(10));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Time::Micros(i), [&] {
      if (++count == 3) {
        sim.Stop();
      }
    });
  }
  sim.Run();
  EXPECT_EQ(count, 3);
  // Remaining events still pending; a new Run drains them.
  sim.Run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Time::Micros(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.Schedule(Time::Micros(1), [] {});
  const EventId id = sim.Schedule(Time::Micros(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.Schedule(Time::Micros(i), [&] { draws.push_back(sim.rng().NextUint64()); });
    }
    sim.Run();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimulatorTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.Schedule(Time::Millis(1), [&] {
    sim.Schedule(Time::Zero(), [&] { EXPECT_EQ(sim.Now(), Time::Millis(1)); });
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), Time::Millis(1));
}

}  // namespace
}  // namespace dibs
