#include "src/sim/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dibs {
namespace {

TEST(TimeTest, Factories) {
  EXPECT_EQ(Time::Nanos(1).nanos(), 1);
  EXPECT_EQ(Time::Micros(1).nanos(), 1000);
  EXPECT_EQ(Time::Millis(1).nanos(), 1000000);
  EXPECT_EQ(Time::Seconds(1).nanos(), 1000000000);
  EXPECT_EQ(Time::Zero().nanos(), 0);
}

TEST(TimeTest, FromSecondsRounds) {
  EXPECT_EQ(Time::FromSeconds(1.5).nanos(), 1500000000);
  EXPECT_EQ(Time::FromSeconds(0.0000000014).nanos(), 1);  // rounds to nearest ns
}

TEST(TimeTest, Conversions) {
  const Time t = Time::Millis(1500);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.ToMillis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ToMicros(), 1500000.0);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::Micros(10);
  const Time b = Time::Micros(3);
  EXPECT_EQ((a + b).nanos(), 13000);
  EXPECT_EQ((a - b).nanos(), 7000);
  EXPECT_EQ((a * 3).nanos(), 30000);
  EXPECT_EQ((3 * a).nanos(), 30000);
  EXPECT_EQ((a / 2).nanos(), 5000);
  EXPECT_EQ(a / b, 3);
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::Micros(5);
  t += Time::Micros(2);
  EXPECT_EQ(t, Time::Micros(7));
  t -= Time::Micros(7);
  EXPECT_TRUE(t.IsZero());
}

TEST(TimeTest, Comparison) {
  EXPECT_LT(Time::Micros(1), Time::Micros(2));
  EXPECT_GT(Time::Millis(1), Time::Micros(999));
  EXPECT_EQ(Time::Millis(1), Time::Micros(1000));
  EXPECT_LE(Time::Zero(), Time::Zero());
}

TEST(TimeTest, Streaming) {
  std::ostringstream os;
  os << Time::Millis(3);
  EXPECT_EQ(os.str(), "3ms");
  os.str("");
  os << Time::Nanos(500);
  EXPECT_EQ(os.str(), "500ns");
  os.str("");
  os << Time::Seconds(2);
  EXPECT_EQ(os.str(), "2s");
}

TEST(SerializationDelayTest, FullMtuAtOneGbps) {
  // 1500B * 8 / 1e9 = 12us.
  EXPECT_EQ(SerializationDelay(1500, 1000000000), Time::Micros(12));
}

TEST(SerializationDelayTest, AckAtOneGbps) {
  EXPECT_EQ(SerializationDelay(40, 1000000000).nanos(), 320);
}

TEST(SerializationDelayTest, SlowLink) {
  // 1500B at 10Mbps = 1.2ms.
  EXPECT_EQ(SerializationDelay(1500, 10000000), Time::Micros(1200));
}

TEST(SerializationDelayTest, ZeroBytes) {
  EXPECT_EQ(SerializationDelay(0, 1000000000), Time::Zero());
}

TEST(SerializationDelayTest, HugeTransferDoesNotOverflow) {
  // 1TB at 1Gbps = 8000 seconds.
  const Time t = SerializationDelay(1000000000000LL, 1000000000);
  EXPECT_EQ(t, Time::Seconds(8000));
}

}  // namespace
}  // namespace dibs
