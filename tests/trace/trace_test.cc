// Trace subsystem tests: codec round-trips, flight-recorder ring semantics,
// filters, dump-on-ValidationError, journey-vs-aggregate cross-checks, and
// the determinism contract — traced runs match untraced runs, and trace
// JSONL is byte-identical across worker counts and process isolation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/device/invariant_checker.h"
#include "src/exp/sweep_engine.h"
#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/journey.h"
#include "src/trace/trace_bus.h"
#include "src/trace/trace_codec.h"
#include "src/trace/trace_config.h"
#include "src/util/validation.h"

namespace dibs {
namespace {

TraceEvent FullEvent(uint64_t uid) {
  TraceEvent e;
  e.at = Time::Micros(1234);
  e.type = TraceEventType::kDequeue;
  e.node = 17;
  e.port = 3;
  e.uid = uid;
  e.flow = 42;
  e.src = 5;
  e.dst = 9;
  e.seq = 123456;
  e.is_ack = false;
  e.ttl = 250;
  e.tclass = static_cast<uint8_t>(TrafficClass::kQuery);
  e.detour_count = 7;
  e.queue_depth = 12;
  return e;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TraceCodec, RoundTripAllFields) {
  const TraceEvent e = FullEvent(99);
  TraceEvent d;
  ASSERT_TRUE(DecodeTraceEvent(EncodeTraceEvent(e), &d));
  EXPECT_EQ(d.at, e.at);
  EXPECT_EQ(d.type, e.type);
  EXPECT_EQ(d.node, e.node);
  EXPECT_EQ(d.port, e.port);
  EXPECT_EQ(d.uid, e.uid);
  EXPECT_EQ(d.flow, e.flow);
  EXPECT_EQ(d.src, e.src);
  EXPECT_EQ(d.dst, e.dst);
  EXPECT_EQ(d.seq, e.seq);
  EXPECT_EQ(d.is_ack, e.is_ack);
  EXPECT_EQ(d.ttl, e.ttl);
  EXPECT_EQ(d.tclass, e.tclass);
  EXPECT_EQ(d.detour_count, e.detour_count);
  EXPECT_EQ(d.queue_depth, e.queue_depth);
}

TEST(TraceCodec, RoundTripDropReasons) {
  TraceEvent e = FullEvent(7);
  e.type = TraceEventType::kDrop;
  e.drop_reason = static_cast<uint8_t>(DropReason::kTtlExpired);
  TraceEvent d;
  ASSERT_TRUE(DecodeTraceEvent(EncodeTraceEvent(e), &d));
  EXPECT_EQ(d.drop_reason, e.drop_reason);

  // The pFabric-eviction sentinel is not a DropReason but must survive too.
  e.drop_reason = kTraceEvictionReason;
  ASSERT_TRUE(DecodeTraceEvent(EncodeTraceEvent(e), &d));
  EXPECT_EQ(d.drop_reason, kTraceEvictionReason);
}

TEST(TraceCodec, RoundTripGuardTransition) {
  // Breaker transitions ride the numeric fields: from-state in port,
  // to-state in queue_depth, uid 0 (no packet involved).
  TraceEvent e;
  e.at = Time::Millis(42);
  e.type = TraceEventType::kGuardTransition;
  e.node = 17;
  e.port = static_cast<int32_t>(GuardState::kArmed);
  e.queue_depth = static_cast<int32_t>(GuardState::kSuppressed);
  e.uid = 0;
  TraceEvent d;
  ASSERT_TRUE(DecodeTraceEvent(EncodeTraceEvent(e), &d));
  EXPECT_EQ(d.type, TraceEventType::kGuardTransition);
  EXPECT_EQ(d.at, e.at);
  EXPECT_EQ(d.node, 17);
  EXPECT_EQ(static_cast<GuardState>(d.port), GuardState::kArmed);
  EXPECT_EQ(static_cast<GuardState>(d.queue_depth), GuardState::kSuppressed);
}

TEST(TraceCodec, EncodedLineFitsFixedBufferAndEndsWithNewline) {
  char buf[kMaxTraceLineBytes];
  const size_t n = EncodeTraceEventLine(FullEvent(~0ull), buf, sizeof buf);
  ASSERT_GT(n, 0u);
  ASSERT_LT(n, sizeof buf);
  EXPECT_EQ(buf[n - 1], '\n');
}

TEST(TraceCodec, RejectsMalformedLines) {
  TraceEvent d;
  EXPECT_FALSE(DecodeTraceEvent("", &d));
  EXPECT_FALSE(DecodeTraceEvent("{\"t\":1,\"ev\":\"no-such-event\"}", &d));
}

TEST(FlightRecorder, RingWrapsKeepingNewest) {
  FlightRecorder ring(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    ring.OnEvent(FullEvent(i));
  }
  EXPECT_EQ(ring.total_events(), 20u);
  EXPECT_EQ(ring.size(), 8u);
  const std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].uid, 13 + i);  // oldest-to-newest: uids 13..20
  }
}

TEST(FlightRecorder, DumpIsParseableJsonl) {
  FlightRecorder ring(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    ring.OnEvent(FullEvent(i));
  }
  const std::string path = ::testing::TempDir() + "dibs_ring_dump.jsonl";
  ASSERT_TRUE(ring.DumpToFile(path));
  std::ifstream in(path);
  std::string line;
  std::vector<uint64_t> uids;
  while (std::getline(in, line)) {
    TraceEvent d;
    ASSERT_TRUE(DecodeTraceEvent(line, &d)) << line;
    uids.push_back(d.uid);
  }
  EXPECT_EQ(uids, (std::vector<uint64_t>{3, 4, 5, 6}));
  std::remove(path.c_str());
}

TEST(TraceBusTest, FiltersByNodeFlowClassAndSample) {
  struct Counter : TraceSink {
    int n = 0;
    void OnEvent(const TraceEvent&) override { ++n; }
  } sink;
  TraceBus bus;
  bus.AddSink(&sink);

  TraceFilter f;
  f.nodes = {17};
  f.flows = {42};
  f.tclass = static_cast<int>(TrafficClass::kQuery);
  bus.SetFilter(f);

  bus.Emit(FullEvent(1));  // matches everything
  EXPECT_EQ(sink.n, 1);
  TraceEvent wrong_node = FullEvent(1);
  wrong_node.node = 3;
  bus.Emit(wrong_node);
  EXPECT_EQ(sink.n, 1);
  TraceEvent wrong_flow = FullEvent(1);
  wrong_flow.flow = 7;
  bus.Emit(wrong_flow);
  EXPECT_EQ(sink.n, 1);
  TraceEvent wrong_class = FullEvent(1);
  wrong_class.tclass = static_cast<uint8_t>(TrafficClass::kBackground);
  bus.Emit(wrong_class);
  EXPECT_EQ(sink.n, 1);

  // Control events (uid 0) bypass packet dimensions but honor the node set.
  TraceEvent control;
  control.type = TraceEventType::kPause;
  control.node = 17;
  bus.Emit(control);
  EXPECT_EQ(sink.n, 2);
}

TEST(TraceBusTest, SamplingIsAPureUidHash) {
  // The same uid set must be selected on every call — no RNG involved.
  int kept = 0;
  for (uint64_t uid = 1; uid <= 1000; ++uid) {
    const bool a = SampledUid(uid, 0.25);
    EXPECT_EQ(a, SampledUid(uid, 0.25));
    kept += a ? 1 : 0;
  }
  EXPECT_GT(kept, 150);
  EXPECT_LT(kept, 350);
  EXPECT_TRUE(SampledUid(123, 1.0));
  EXPECT_FALSE(SampledUid(123, 0.0));
}

TEST(TraceConfigTest, PerRunTracePathInsertsRunIndex) {
  EXPECT_EQ(PerRunTracePath("t.jsonl", 3), "t.run3.jsonl");
  EXPECT_EQ(PerRunTracePath("dir.d/t.jsonl", 0), "dir.d/t.run0.jsonl");
  EXPECT_EQ(PerRunTracePath("noext", 2), "noext.run2");
  EXPECT_EQ(PerRunTracePath("t.jsonl", -1), "t.jsonl");
  EXPECT_EQ(PerRunTracePath("", 4), "");
}

TEST(TraceConfigTest, EnvOverlayOverridesBase) {
  ::setenv("DIBS_TRACE", "1", 1);
  ::setenv("DIBS_TRACE_JSONL", "x.jsonl", 1);
  ::setenv("DIBS_TRACE_NODES", "3,1,2", 1);
  ::setenv("DIBS_TRACE_SAMPLE", "0.5", 1);
  ::setenv("DIBS_TRACE_RING", "128", 1);
  ::setenv("DIBS_TRACE_DUMP", "1", 1);
  const TraceConfig c = ApplyTraceEnv(TraceConfig{});
  ::unsetenv("DIBS_TRACE");
  ::unsetenv("DIBS_TRACE_JSONL");
  ::unsetenv("DIBS_TRACE_NODES");
  ::unsetenv("DIBS_TRACE_SAMPLE");
  ::unsetenv("DIBS_TRACE_RING");
  ::unsetenv("DIBS_TRACE_DUMP");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.jsonl_path, "x.jsonl");
  EXPECT_EQ(c.filter.nodes, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(c.filter.sample, 0.5);
  EXPECT_EQ(c.ring_capacity, 128u);
  EXPECT_TRUE(c.dump_at_end);
}

// A miniature DIBS scenario with buffers small enough to guarantee detours.
ExperimentConfig MiniDibs(uint64_t seed) {
  ExperimentConfig c = DibsConfig();
  c.fat_tree_k = 4;  // 16 hosts
  c.incast_degree = 8;
  c.qps = 400;
  c.response_bytes = 20000;
  c.net.switch_buffer_packets = 10;
  c.net.ecn_threshold_packets = 5;
  c.enable_background = false;
  c.duration = Time::Millis(100);
  c.drain = Time::Millis(50);
  c.seed = seed;
  return c;
}

TEST(TraceScenario, JourneysMatchSwitchLevelDetourCounts) {
  ExperimentConfig c = MiniDibs(11);
  c.trace.enabled = true;
  Scenario scenario(c);
  const ScenarioResult r = scenario.Run();
  ASSERT_NE(scenario.trace(), nullptr);
  const JourneyBuilder& journeys = scenario.trace()->journeys();

  EXPECT_GT(r.detours, 0u);
  uint64_t journey_detours = 0;
  for (const auto& [uid, j] : journeys.journeys()) {
    journey_detours += j.detour_count;
    // Per journey, the reconstructed path shows exactly detour_count
    // detoured hops.
    uint32_t detoured_hops = 0;
    for (const JourneyHop& hop : j.hops) {
      detoured_hops += hop.detoured ? 1 : 0;
    }
    EXPECT_EQ(detoured_hops, j.detour_count) << "uid " << uid;
  }
  EXPECT_EQ(journey_detours, r.detours);
  EXPECT_EQ(journeys.delivered_packets(), r.delivered_packets);
  EXPECT_EQ(r.loop_packets, journeys.loop_packets());
}

TEST(TraceScenario, TracedRunIsBitIdenticalToUntraced) {
  const ScenarioResult plain = RunScenario(MiniDibs(23));

  ExperimentConfig traced_cfg = MiniDibs(23);
  traced_cfg.trace.enabled = true;
  const ScenarioResult traced = RunScenario(traced_cfg);

  // Attaching the trace bus must not perturb the simulation at all.
  EXPECT_EQ(traced.events_processed, plain.events_processed);
  EXPECT_EQ(traced.detours, plain.detours);
  EXPECT_EQ(traced.drops, plain.drops);
  EXPECT_EQ(traced.delivered_packets, plain.delivered_packets);
  EXPECT_DOUBLE_EQ(traced.qct99_ms, plain.qct99_ms);
  EXPECT_EQ(traced.queries_completed, plain.queries_completed);
  EXPECT_EQ(traced.queueing_delay_us.count, plain.queueing_delay_us.count);
  EXPECT_DOUBLE_EQ(traced.queueing_delay_us.mean, plain.queueing_delay_us.mean);
}

TEST(TraceScenario, ValidationErrorDumpsFlightRecorder) {
  validate::ScopedEnable on;
  ExperimentConfig c = MiniDibs(31);
  c.duration = Time::Millis(30);
  c.drain = Time::Millis(20);
  c.trace.enabled = true;
  c.trace.dump_path = ::testing::TempDir() + "dibs_violation_dump.jsonl";
  std::remove(c.trace.dump_path.c_str());

  Scenario scenario(c);
  ASSERT_NE(scenario.network().invariant_checker(), nullptr);
  // Phantom injection: the ledger now expects a packet that will never reach
  // a terminal state, so CheckBalanced at the cutoff must throw.
  Packet phantom;
  phantom.uid = 0xDEADull;
  phantom.src = 0;
  phantom.dst = 1;
  phantom.flow = 777;
  scenario.network().invariant_checker()->OnHostSend(0, phantom, Time::Zero());

  EXPECT_THROW(scenario.Run(), ValidationError);

  // The dump exists and every line decodes.
  std::ifstream in(c.trace.dump_path);
  ASSERT_TRUE(in.is_open()) << c.trace.dump_path;
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    TraceEvent d;
    ASSERT_TRUE(DecodeTraceEvent(line, &d)) << line;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
  std::remove(c.trace.dump_path.c_str());
}

// The sweep engine's byte-identity contract extends to trace JSONL: the same
// spec produces identical per-run trace files at any worker count and under
// process isolation (events carry sim time only; sampling is a uid hash).
TEST(TraceSweep, JsonlIsByteIdenticalAcrossJobsAndIsolation) {
  const std::string base = ::testing::TempDir() + "dibs_sweep_trace.jsonl";
  SweepSpec spec;
  spec.name = "trace-identity";
  spec.base = MiniDibs(5);
  spec.base.duration = Time::Millis(40);
  spec.base.drain = Time::Millis(20);
  spec.base.trace.enabled = true;
  spec.base.trace.jsonl_path = base;
  spec.replications = 3;
  spec.seed = 5;

  auto run_and_collect = [&](int jobs, IsolationMode mode) {
    for (int i = 0; i < spec.replications; ++i) {
      std::remove(PerRunTracePath(base, i).c_str());
    }
    SweepOptions opts;
    opts.jobs = jobs;
    opts.isolate = mode;
    opts.progress = false;
    SweepEngine engine(opts);
    engine.Run(spec);
    std::vector<std::string> files;
    for (int i = 0; i < spec.replications; ++i) {
      files.push_back(ReadFile(PerRunTracePath(base, i)));
      EXPECT_FALSE(files.back().empty()) << "run " << i;
    }
    return files;
  };

  const std::vector<std::string> serial = run_and_collect(1, IsolationMode::kThread);
  const std::vector<std::string> threaded = run_and_collect(4, IsolationMode::kThread);
  const std::vector<std::string> isolated = run_and_collect(2, IsolationMode::kProcess);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial, isolated);
  for (int i = 0; i < spec.replications; ++i) {
    std::remove(PerRunTracePath(base, i).c_str());
  }
}

// MiniDibs under a hair-trigger guard: thresholds low enough that the
// incast's detour storm trips breakers within the run.
ExperimentConfig MiniGuarded(uint64_t seed) {
  ExperimentConfig c = MiniDibs(seed);
  c.label = "DCTCP+DIBS+guard";
  c.net.guard.enabled = true;
  c.net.guard.window = Time::Millis(1);
  c.net.guard.min_window_packets = 16;
  c.net.guard.trip_detour_rate = 0.05;
  c.net.guard.rearm_detour_rate = 0.02;
  c.net.guard.suppress_hold = Time::Millis(2);
  c.net.guard.adaptive_ttl = true;
  c.net.guard.watchdog = true;
  return c;
}

TEST(TraceScenario, GuardTransitionsVisibleInTraceAndResult) {
  ExperimentConfig c = MiniGuarded(11);
  c.trace.enabled = true;
  c.trace.jsonl_path = ::testing::TempDir() + "dibs_guard_trace.jsonl";
  std::remove(c.trace.jsonl_path.c_str());
  Scenario scenario(c);
  const ScenarioResult r = scenario.Run();

  // The breaker tripped and the result columns say so coherently.
  ASSERT_GT(r.guard_trips, 0u);
  EXPECT_GE(r.guard_transitions, r.guard_trips);
  EXPECT_GT(r.guard_time_suppressed_ms, 0.0);
  EXPECT_GT(r.guard_suppressed_drops, 0u);

  // Every trip is visible in the trace as an armed->suppressed transition,
  // and decoded transitions reproduce the recorder's count exactly.
  std::ifstream in(c.trace.jsonl_path);
  ASSERT_TRUE(in.is_open()) << c.trace.jsonl_path;
  std::string line;
  uint64_t transitions = 0;
  uint64_t trips = 0;
  while (std::getline(in, line)) {
    TraceEvent d;
    ASSERT_TRUE(DecodeTraceEvent(line, &d)) << line;
    if (d.type != TraceEventType::kGuardTransition) {
      continue;
    }
    ++transitions;
    if (static_cast<GuardState>(d.port) == GuardState::kArmed &&
        static_cast<GuardState>(d.queue_depth) == GuardState::kSuppressed) {
      ++trips;
    }
  }
  EXPECT_EQ(transitions, r.guard_transitions);
  EXPECT_EQ(trips, r.guard_trips);
  std::remove(c.trace.jsonl_path.c_str());
}

// Satellite of the determinism contract: the guard's breaker decisions are
// pure counter+clock arithmetic, so a guarded AND traced fig14-style slice
// stays byte-identical across worker counts and process isolation.
TEST(TraceSweep, GuardedJsonlIsByteIdenticalAcrossJobsAndIsolation) {
  const std::string base = ::testing::TempDir() + "dibs_guard_sweep_trace.jsonl";
  SweepSpec spec;
  spec.name = "guard-identity";
  spec.base = MiniGuarded(5);
  spec.base.duration = Time::Millis(40);
  spec.base.drain = Time::Millis(20);
  spec.base.trace.enabled = true;
  spec.base.trace.jsonl_path = base;
  spec.replications = 2;
  spec.seed = 5;

  auto run_and_collect = [&](int jobs, IsolationMode mode) {
    for (int i = 0; i < spec.replications; ++i) {
      std::remove(PerRunTracePath(base, i).c_str());
    }
    SweepOptions opts;
    opts.jobs = jobs;
    opts.isolate = mode;
    opts.progress = false;
    SweepEngine engine(opts);
    engine.Run(spec);
    std::vector<std::string> files;
    for (int i = 0; i < spec.replications; ++i) {
      files.push_back(ReadFile(PerRunTracePath(base, i)));
      EXPECT_FALSE(files.back().empty()) << "run " << i;
    }
    return files;
  };

  const std::vector<std::string> serial = run_and_collect(1, IsolationMode::kThread);
  // The guarded trace actually exercises the breaker (not a quiet no-op).
  EXPECT_NE(serial[0].find("guard-transition"), std::string::npos);
  const std::vector<std::string> threaded = run_and_collect(8, IsolationMode::kThread);
  const std::vector<std::string> isolated = run_and_collect(2, IsolationMode::kProcess);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial, isolated);
  for (int i = 0; i < spec.replications; ++i) {
    std::remove(PerRunTracePath(base, i).c_str());
  }
}

}  // namespace
}  // namespace dibs
