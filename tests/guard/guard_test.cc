// Overload-guard contract: the per-switch circuit breaker trips, dwells,
// probes, and re-arms with hysteresis; the fabric's adaptive TTL clamp
// tightens with pressure; the collapse watchdog flags (or, strict, aborts)
// sustained goodput loss. Everything here is plain counters + sim clock, so
// these tests double as the determinism spec for the guard's state machine.

#include "src/guard/collapse_watchdog.h"
#include "src/guard/detour_guard.h"
#include "src/guard/guard_config.h"
#include "src/guard/guard_fabric.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace dibs {
namespace {

GuardConfig TestConfig() {
  GuardConfig g;
  g.enabled = true;
  g.window = Time::Millis(1);
  g.ewma_alpha = 1.0;  // no smoothing: window rate == EWMA, thresholds exact
  g.trip_detour_rate = 0.25;
  g.trip_bounce_ratio = 0.60;
  g.trip_ttl_rate = 0.02;
  g.min_window_packets = 10;
  g.rearm_detour_rate = 0.10;
  g.suppress_hold = Time::Millis(2);
  g.probe_budget = 4;
  return g;
}

// Feeds one window of traffic: `packets` handled, of which `detours` reach a
// detour decision (AdmitDetour), then ticks the guard at `now`.
GuardState FeedWindow(DetourGuard& guard, uint64_t packets, uint64_t detours,
                      Time now) {
  for (uint64_t i = 0; i < packets; ++i) {
    guard.NotePacket();
  }
  for (uint64_t i = 0; i < detours; ++i) {
    if (guard.AdmitDetour()) {
      guard.NoteDetour(/*bounce_back=*/false);
    }
  }
  return guard.OnWindowTick(now);
}

TEST(DetourGuardTest, StaysArmedUnderTripRate) {
  DetourGuard guard(TestConfig(), Time::Zero());
  for (int w = 1; w <= 5; ++w) {
    FeedWindow(guard, 100, 10, Time::Millis(w));  // rate 0.10 < trip 0.25
    EXPECT_EQ(guard.state(), GuardState::kArmed);
  }
  EXPECT_EQ(guard.trips(), 0u);
}

TEST(DetourGuardTest, TripsOnDetourRateAndCountsTrip) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));  // rate 0.40 >= 0.25
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
  EXPECT_EQ(guard.trips(), 1u);
  EXPECT_FALSE(guard.DetourEnabled());
  EXPECT_FALSE(guard.AdmitDetour());
}

TEST(DetourGuardTest, TripsOnBounceRatioAlone) {
  DetourGuard guard(TestConfig(), Time::Zero());
  for (uint64_t i = 0; i < 100; ++i) {
    guard.NotePacket();
  }
  // Detour rate 0.10 (under trip) but every detour bounces back out the
  // arrival port — the loop signature.
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(guard.AdmitDetour());
    guard.NoteDetour(/*bounce_back=*/true);
  }
  guard.OnWindowTick(Time::Millis(1));
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
}

TEST(DetourGuardTest, TripsOnTtlExpiryRateAlone) {
  DetourGuard guard(TestConfig(), Time::Zero());
  for (uint64_t i = 0; i < 100; ++i) {
    guard.NotePacket();
  }
  for (int i = 0; i < 5; ++i) {
    guard.NoteTtlExpiry();  // rate 0.05 >= trip 0.02
  }
  guard.OnWindowTick(Time::Millis(1));
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
}

TEST(DetourGuardTest, IdleWindowNeitherTripsNorDecays) {
  GuardConfig cfg = TestConfig();
  cfg.ewma_alpha = 0.5;
  DetourGuard guard(cfg, Time::Zero());
  FeedWindow(guard, 100, 80, Time::Millis(1));
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
  const double stormy = guard.ewma_detour_rate();
  // Windows below min_window_packets must not dilute the stored signal:
  // 3 packets with 0 detours is noise, not evidence the storm ended.
  FeedWindow(guard, 3, 0, Time::Millis(2));
  EXPECT_DOUBLE_EQ(guard.ewma_detour_rate(), stormy);
}

TEST(DetourGuardTest, SuppressedHoldsUntilDwellThenProbes) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));
  ASSERT_EQ(guard.state(), GuardState::kSuppressed);
  // suppress_hold = 2ms from the transition at t=1ms: the t=2ms tick is
  // only 1ms in, so the breaker stays open.
  FeedWindow(guard, 100, 0, Time::Millis(2));
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
  FeedWindow(guard, 100, 0, Time::Millis(3));
  EXPECT_EQ(guard.state(), GuardState::kProbing);
}

TEST(DetourGuardTest, ProbingAdmitsOnlyProbeBudgetPerWindow) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));
  FeedWindow(guard, 100, 0, Time::Millis(2));
  FeedWindow(guard, 100, 0, Time::Millis(3));
  ASSERT_EQ(guard.state(), GuardState::kProbing);
  EXPECT_TRUE(guard.DetourEnabled());  // cheap read: not suppressed
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (guard.AdmitDetour()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 4);  // probe_budget
  // Budget refreshes at the next tick.
  guard.OnWindowTick(Time::Millis(4));
  if (guard.state() == GuardState::kProbing) {
    EXPECT_TRUE(guard.AdmitDetour());
  }
}

TEST(DetourGuardTest, ProbingRearmsOnlyBelowRearmLine) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));
  FeedWindow(guard, 100, 0, Time::Millis(2));
  FeedWindow(guard, 100, 0, Time::Millis(3));
  ASSERT_EQ(guard.state(), GuardState::kProbing);
  // Rate 0.15 sits in the hysteresis band [0.10, 0.25): neither re-arm nor
  // re-trip — PROBING holds.
  FeedWindow(guard, 100, 15, Time::Millis(4));
  EXPECT_EQ(guard.state(), GuardState::kProbing);
  // Rate 0.05 < rearm 0.10: close the loop back to ARMED.
  FeedWindow(guard, 100, 5, Time::Millis(5));
  EXPECT_EQ(guard.state(), GuardState::kArmed);
}

TEST(DetourGuardTest, ProbingReopensWhenPressureReturns) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));
  FeedWindow(guard, 100, 0, Time::Millis(2));
  FeedWindow(guard, 100, 0, Time::Millis(3));
  ASSERT_EQ(guard.state(), GuardState::kProbing);
  FeedWindow(guard, 100, 50, Time::Millis(4));  // storm still raging
  EXPECT_EQ(guard.state(), GuardState::kSuppressed);
  // Re-entering SUPPRESSED from PROBING is not a fresh trip.
  EXPECT_EQ(guard.trips(), 1u);
}

TEST(DetourGuardTest, SuppressedForAccumulatesAcrossStretches) {
  DetourGuard guard(TestConfig(), Time::Zero());
  FeedWindow(guard, 100, 40, Time::Millis(1));  // suppressed at 1ms
  // Open stretch counts up to `now` while still suppressed.
  EXPECT_EQ(guard.SuppressedFor(Time::Millis(2)), Time::Millis(1));
  FeedWindow(guard, 100, 0, Time::Millis(2));
  FeedWindow(guard, 100, 0, Time::Millis(3));  // probing at 3ms: 2ms banked
  ASSERT_EQ(guard.state(), GuardState::kProbing);
  EXPECT_EQ(guard.SuppressedFor(Time::Millis(10)), Time::Millis(2));
}

TEST(DetourGuardTest, SuppressedAttemptsStillFeedTheDemandSignal) {
  GuardConfig cfg = TestConfig();
  cfg.ewma_alpha = 0.5;
  DetourGuard guard(cfg, Time::Zero());
  FeedWindow(guard, 100, 80, Time::Millis(1));
  ASSERT_EQ(guard.state(), GuardState::kSuppressed);
  // Demand persists while the breaker is open: denied attempts count, so
  // the EWMA stays high and PROBING will see the truth.
  const double before = guard.ewma_detour_rate();
  FeedWindow(guard, 100, 80, Time::Millis(2));
  EXPECT_GE(guard.ewma_detour_rate(), before * 0.99);
}

// ---- GuardFabric ----

TEST(GuardFabricTest, TickWalksGuardsAndReportsTransitions) {
  Simulator sim;
  GuardConfig cfg = TestConfig();
  GuardFabric fabric(&sim, cfg, {7, 3});
  std::vector<std::tuple<int, GuardState, GuardState>> seen;
  fabric.set_transition_callback([&](int node, GuardState from, GuardState to) {
    seen.emplace_back(node, from, to);
  });
  fabric.Start(Time::Millis(10));
  // Storm both switches for the first window.
  sim.Schedule(Time::Micros(100), [&] {
    for (int node : {3, 7}) {
      for (int i = 0; i < 100; ++i) {
        fabric.NotePacket(node);
      }
      for (int i = 0; i < 40; ++i) {
        fabric.AdmitDetour(node, 0);
      }
    }
  });
  sim.RunUntil(Time::Millis(1));
  ASSERT_EQ(seen.size(), 2u);
  // std::map iteration: node 3 before node 7, regardless of ctor order.
  EXPECT_EQ(std::get<0>(seen[0]), 3);
  EXPECT_EQ(std::get<0>(seen[1]), 7);
  EXPECT_EQ(std::get<1>(seen[0]), GuardState::kArmed);
  EXPECT_EQ(std::get<2>(seen[0]), GuardState::kSuppressed);
  EXPECT_EQ(fabric.TotalTrips(), 2u);
}

TEST(GuardFabricTest, SuppressedSwitchDeniesWhileOthersDetour) {
  Simulator sim;
  GuardFabric fabric(&sim, TestConfig(), {1, 2});
  fabric.Start(Time::Millis(10));
  sim.Schedule(Time::Micros(100), [&] {
    for (int i = 0; i < 100; ++i) {
      fabric.NotePacket(1);
      fabric.NotePacket(2);
    }
    for (int i = 0; i < 40; ++i) {
      fabric.AdmitDetour(1, 0);  // only switch 1 storms
    }
  });
  sim.RunUntil(Time::Millis(1));
  EXPECT_FALSE(fabric.DetourEnabled(1));
  EXPECT_TRUE(fabric.DetourEnabled(2));
  EXPECT_EQ(fabric.AdmitDetour(1, 0), DropReason::kGuardSuppressed);
  EXPECT_EQ(fabric.AdmitDetour(2, 0), std::nullopt);
  EXPECT_GT(fabric.suppressed_denials(), 0u);
}

TEST(GuardFabricTest, BudgetUnlimitedWithoutAdaptiveTtl) {
  Simulator sim;
  GuardFabric fabric(&sim, TestConfig(), {1});
  EXPECT_EQ(fabric.DetourBudget(), UINT16_MAX);
  EXPECT_EQ(fabric.AdmitDetour(1, 60000), std::nullopt);
}

TEST(GuardFabricTest, AdaptiveTtlTightensBudgetWithPressure) {
  Simulator sim;
  GuardConfig cfg = TestConfig();
  cfg.adaptive_ttl = true;
  cfg.ttl_budget_max = 64;
  cfg.ttl_budget_min = 8;
  cfg.ttl_pressure_onset = 0.05;
  cfg.ttl_pressure_full = 0.40;
  // Keep the breaker quiet so only the clamp acts.
  cfg.trip_detour_rate = 10.0;
  cfg.trip_bounce_ratio = 10.0;
  cfg.trip_ttl_rate = 10.0;
  cfg.rearm_detour_rate = 9.0;
  GuardFabric fabric(&sim, cfg, {1});
  EXPECT_EQ(fabric.DetourBudget(), 64);  // starts wide open

  fabric.Start(Time::Millis(10));
  // Pressure 0.40 >= full: after the tick the budget is clamped to min.
  sim.Schedule(Time::Micros(100), [&] {
    for (int i = 0; i < 100; ++i) {
      fabric.NotePacket(1);
    }
    for (int i = 0; i < 40; ++i) {
      fabric.AdmitDetour(1, 0);
    }
  });
  sim.RunUntil(Time::Millis(1));
  EXPECT_EQ(fabric.DetourBudget(), 8);
  EXPECT_DOUBLE_EQ(fabric.FabricPressure(), 0.40);

  // Over-budget packet dies as guard-ttl-clamped; the clamp outranks the
  // breaker and the probe budget.
  EXPECT_EQ(fabric.AdmitDetour(1, 8), DropReason::kGuardTtlClamped);
  EXPECT_EQ(fabric.AdmitDetour(1, 7), std::nullopt);
  EXPECT_EQ(fabric.ttl_clamped(), 1u);

  // Pressure decays once the storm ends (idle fabric windows don't update;
  // feed calm traffic instead), and the budget walks back up the lerp.
  for (int w = 2; w <= 12; ++w) {
    sim.Schedule(Time::Micros(100), [&] {
      for (int i = 0; i < 100; ++i) {
        fabric.NotePacket(1);
      }
    });
    sim.RunUntil(Time::Millis(w));
  }
  EXPECT_GT(fabric.DetourBudget(), 32);
}

TEST(GuardFabricTest, MidBandPressureLerpsBetweenBudgetEndpoints) {
  Simulator sim;
  GuardConfig cfg = TestConfig();
  cfg.ewma_alpha = 1.0;
  cfg.adaptive_ttl = true;
  cfg.ttl_budget_max = 64;
  cfg.ttl_budget_min = 8;
  cfg.ttl_pressure_onset = 0.0;
  cfg.ttl_pressure_full = 0.40;
  cfg.trip_detour_rate = 10.0;
  cfg.rearm_detour_rate = 9.0;
  cfg.trip_bounce_ratio = 10.0;
  cfg.trip_ttl_rate = 10.0;
  GuardFabric fabric(&sim, cfg, {1});
  fabric.Start(Time::Millis(5));
  sim.Schedule(Time::Micros(100), [&] {
    for (int i = 0; i < 100; ++i) {
      fabric.NotePacket(1);
    }
    for (int i = 0; i < 20; ++i) {
      fabric.AdmitDetour(1, 0);  // pressure 0.20 = halfway to full
    }
  });
  sim.RunUntil(Time::Millis(1));
  EXPECT_EQ(fabric.DetourBudget(), 36);  // 64 - 0.5 * (64 - 8)
}

// ---- CollapseWatchdog ----

TEST(CollapseWatchdogTest, DetectsSustainedCollapseAndRecordsOnset) {
  Simulator sim;
  GuardConfig cfg;
  cfg.collapse_window = Time::Millis(1);
  cfg.collapse_fraction = 0.5;
  cfg.collapse_consecutive = 3;
  cfg.collapse_min_peak = 100;
  uint64_t delivered = 0;
  CollapseWatchdog dog(&sim, cfg, [&] { return delivered; });
  dog.Start(Time::Millis(20), /*strict=*/false);
  // Healthy for 5 windows (1000/window), then collapse to 100/window.
  for (int w = 0; w < 20; ++w) {
    sim.Schedule(Time::Micros(w * 1000 + 500),
                 [&, w] { delivered += w < 5 ? 1000 : 100; });
  }
  sim.Run();
  EXPECT_TRUE(dog.collapse_detected());
  EXPECT_EQ(dog.peak_window_packets(), 1000u);
  // Streak starts at window 6 (t=6ms) and completes at window 8 (t=8ms).
  EXPECT_DOUBLE_EQ(dog.collapse_onset_ms(), 8.0);
}

TEST(CollapseWatchdogTest, HealthyRunNeverFlags) {
  Simulator sim;
  GuardConfig cfg;
  cfg.collapse_window = Time::Millis(1);
  uint64_t delivered = 0;
  CollapseWatchdog dog(&sim, cfg, [&] { return delivered; });
  dog.Start(Time::Millis(10), /*strict=*/false);
  for (int w = 0; w < 10; ++w) {
    sim.Schedule(Time::Micros(w * 1000 + 500), [&] { delivered += 1000; });
  }
  sim.Run();
  EXPECT_FALSE(dog.collapse_detected());
  EXPECT_EQ(dog.windows_sampled(), 10u);
}

TEST(CollapseWatchdogTest, NoPeakMeansNoJudgment) {
  Simulator sim;
  GuardConfig cfg;
  cfg.collapse_window = Time::Millis(1);
  cfg.collapse_min_peak = 1000;
  uint64_t delivered = 0;
  CollapseWatchdog dog(&sim, cfg, [&] { return delivered; });
  dog.Start(Time::Millis(10), /*strict=*/false);
  // Trickle traffic never establishes a peak: starvation, not collapse.
  for (int w = 0; w < 10; ++w) {
    sim.Schedule(Time::Micros(w * 1000 + 500), [&] { delivered += 5; });
  }
  sim.Run();
  EXPECT_FALSE(dog.collapse_detected());
}

TEST(CollapseWatchdogTest, BriefDipBelowStreakDoesNotFlag) {
  Simulator sim;
  GuardConfig cfg;
  cfg.collapse_window = Time::Millis(1);
  cfg.collapse_consecutive = 3;
  cfg.collapse_min_peak = 100;
  uint64_t delivered = 0;
  CollapseWatchdog dog(&sim, cfg, [&] { return delivered; });
  dog.Start(Time::Millis(10), /*strict=*/false);
  // Two-window dip, then recovery: the streak resets before reaching 3.
  const uint64_t plan[] = {1000, 1000, 100, 100, 1000, 1000, 1000, 1000, 1000, 1000};
  for (int w = 0; w < 10; ++w) {
    sim.Schedule(Time::Micros(w * 1000 + 500), [&, w] { delivered += plan[w]; });
  }
  sim.Run();
  EXPECT_FALSE(dog.collapse_detected());
}

TEST(CollapseWatchdogTest, StrictModeThrowsTypedError) {
  Simulator sim;
  GuardConfig cfg;
  cfg.collapse_window = Time::Millis(1);
  cfg.collapse_consecutive = 2;
  cfg.collapse_min_peak = 100;
  uint64_t delivered = 0;
  CollapseWatchdog dog(&sim, cfg, [&] { return delivered; });
  dog.Start(Time::Millis(20), /*strict=*/true);
  for (int w = 0; w < 20; ++w) {
    sim.Schedule(Time::Micros(w * 1000 + 500),
                 [&, w] { delivered += w < 3 ? 1000 : 10; });
  }
  EXPECT_THROW(sim.Run(), CollapseError);
  EXPECT_TRUE(dog.collapse_detected());
}

TEST(CollapseWatchdogTest, StrictCollapseEnvParsesOnlyLiteralOne) {
  ::setenv("DIBS_STRICT_COLLAPSE", "1", 1);
  EXPECT_TRUE(CollapseWatchdog::ReadStrictCollapseEnv());
  ::setenv("DIBS_STRICT_COLLAPSE", "0", 1);
  EXPECT_FALSE(CollapseWatchdog::ReadStrictCollapseEnv());
  ::unsetenv("DIBS_STRICT_COLLAPSE");
  EXPECT_FALSE(CollapseWatchdog::ReadStrictCollapseEnv());
}

// The whole guard is counter + clock arithmetic; identical inputs must give
// identical trajectories (the unit-level face of the bit-identical contract).
TEST(GuardDeterminismTest, IdenticalFeedsGiveIdenticalTrajectories) {
  auto run = [] {
    DetourGuard guard(TestConfig(), Time::Zero());
    std::vector<GuardState> states;
    const uint64_t detours[] = {40, 0, 0, 15, 5, 30, 0, 0, 0, 2};
    for (int w = 0; w < 10; ++w) {
      FeedWindow(guard, 100, detours[w], Time::Millis(w + 1));
      states.push_back(guard.state());
    }
    return states;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dibs
