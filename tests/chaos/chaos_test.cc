// Chaos harness tests: generator determinism, spec codec round-trips and
// envelope enforcement, oracle suite on healthy specs, the planted-bug
// end-to-end loop (find -> shrink -> corpus -> red/green replay), and
// shrinker minimality/determinism.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/chaos/chaos_spec.h"
#include "src/chaos/corpus.h"
#include "src/chaos/fuzz_driver.h"
#include "src/chaos/generator.h"
#include "src/chaos/oracles.h"
#include "src/chaos/shrinker.h"
#include "src/chaos/spec_codec.h"
#include "src/util/json.h"

namespace dibs::chaos {
namespace {

// Scoped environment override with restore (tests mutate DIBS_CHAOS_PLANT
// and DIBS_JOBS; leaking either would poison later tests in this binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      old_ = old;
      had_old_ = true;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

// Small per-run budgets keep the suite fast; every spec the tests execute
// finishes well under this.
OracleOptions FastOptions() {
  OracleOptions options;
  options.event_budget = 5000000;
  options.run_timeout_sec = 60;
  return options;
}

std::string TempDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "chaos_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Generator, SameSeedYieldsByteIdenticalStream) {
  for (int i = 0; i < 32; ++i) {
    const std::string a = EncodeChaosSpec(GenerateSpec(99, i));
    const std::string b = EncodeChaosSpec(GenerateSpec(99, i));
    ASSERT_EQ(a, b) << "case " << i;
  }
}

TEST(Generator, DifferentSeedsAndCasesDiverge) {
  EXPECT_NE(EncodeChaosSpec(GenerateSpec(1, 0)), EncodeChaosSpec(GenerateSpec(2, 0)));
  EXPECT_NE(EncodeChaosSpec(GenerateSpec(1, 0)), EncodeChaosSpec(GenerateSpec(1, 1)));
}

TEST(Generator, EverySpecSurvivesItsOwnEnvelope) {
  // Decode enforces the envelope; every generated spec must round-trip
  // byte-for-byte through it (the generator never draws out of bounds, and
  // the codec loses nothing).
  for (int i = 0; i < 64; ++i) {
    const ChaosSpec spec = GenerateSpec(7, i);
    const std::string encoded = EncodeChaosSpec(spec);
    ChaosSpec decoded;
    ASSERT_NO_THROW(decoded = DecodeChaosSpec(encoded)) << encoded;
    EXPECT_EQ(encoded, EncodeChaosSpec(decoded)) << "case " << i;
  }
}

TEST(SpecCodec, RejectsOutOfEnvelopeAndMalformedSpecs) {
  // Default-constructed spec: known field values, so the textual mutations
  // below always find their targets.
  const std::string base = EncodeChaosSpec(ChaosSpec{});
  auto mutate = [&](const std::string& from, const std::string& to) {
    std::string text = base;
    const size_t pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    EXPECT_THROW(DecodeChaosSpec(text), CodecError) << text;
  };
  mutate("\"topology\":\"fat-tree\"", "\"topology\":\"ring\"");
  mutate("\"fat_tree_k\":4", "\"fat_tree_k\":5");       // odd
  mutate("\"fat_tree_k\":4", "\"fat_tree_k\":64");      // out of range
  mutate("\"initial_ttl\":", "\"initial_ttl\":0,\"x\":");
  mutate("\"oversubscription\":", "\"oversubscription\":1e999,\"x\":");
  mutate("\"detour_policy\":\"", "\"detour_policy\":\"telepathy");
  mutate("\"duration_ms\":", "\"duration_ms\":0.001,\"x\":");
  mutate("\"response_bytes\":", "\"response_bytes\":5,\"x\":");
  mutate("\"qps\":", "\"qps\":\"many\",\"x\":");        // type confusion
  mutate("\"faults\":[", "\"faults\":{},\"x\":[");      // type confusion
  EXPECT_THROW(DecodeChaosSpec("not json"), CodecError);
  EXPECT_THROW(DecodeChaosSpec("[1,2,3]"), CodecError);
  EXPECT_THROW(
      DecodeChaosSpec(
          R"({"faults":[{"at_us":1,"kind":"warp-core-breach","target":0}]})"),
      CodecError);
}

TEST(SpecCodec, FaultTimesRoundTripExactly) {
  ChaosSpec spec = GenerateSpec(1, 0);
  spec.faults.clear();
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kLinkDown;
  e.target = 3;
  e.at = Time::Micros(1234);
  spec.faults.push_back(e);
  const ChaosSpec back = DecodeChaosSpec(EncodeChaosSpec(spec));
  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].at, Time::Micros(1234));
}

TEST(Oracles, HealthySpecsPassTheFullSuite) {
  const OracleOptions options = FastOptions();
  for (int i = 0; i < 2; ++i) {
    const OracleVerdict verdict =
        CheckSpec(GenerateSpec(1, i), options, /*force_heavy=*/true);
    EXPECT_TRUE(verdict.passed)
        << "case " << i << " failed '" << verdict.oracle
        << "': " << verdict.detail;
  }
}

TEST(Oracles, UnknownOracleNameFailsFast) {
  const OracleVerdict verdict =
      CheckOracle(GenerateSpec(1, 0), "horoscope", FastOptions());
  EXPECT_FALSE(verdict.passed);
}

// Seed 7, case 0 delivers far more than 64 packets, so the planted ledger
// leak (skip every 64th delivery) always fires under DIBS_CHAOS_PLANT.
TEST(PlantedBug, FoundShrunkPersistedAndReplaysRedThenGreen) {
  const std::string corpus_dir = TempDir("planted");
  FuzzOptions options;
  options.seed = 7;
  options.cases = 1;
  options.max_failures = 1;
  options.corpus_dir = corpus_dir;
  options.oracle = FastOptions();

  std::ostringstream log;
  FuzzReport report;
  {
    ScopedEnv plant("DIBS_CHAOS_PLANT", "1");
    report = RunFuzz(options, log);
  }
  ASSERT_EQ(report.findings.size(), 1u) << log.str();
  const FuzzFinding& finding = report.findings[0];
  EXPECT_EQ(finding.entry.oracle, "validate");
  EXPECT_FALSE(finding.corpus_path.empty());

  // Acceptance bar: the shrinker must at least halve the spec.
  EXPECT_LE(finding.entry.spec.Size(), 0.5 * finding.original_size)
      << log.str();

  // The persisted entry round-trips and replays red while the bug is in,
  // green once it is "fixed" (plant off).
  const CorpusEntry entry = ReadCorpusEntry(finding.corpus_path);
  EXPECT_EQ(EncodeChaosSpec(entry.spec), EncodeChaosSpec(finding.entry.spec));
  {
    ScopedEnv plant("DIBS_CHAOS_PLANT", "1");
    EXPECT_FALSE(ReplayEntry(entry, options.oracle).passed);
  }
  const OracleVerdict green = ReplayEntry(entry, options.oracle);
  EXPECT_TRUE(green.passed) << green.oracle << ": " << green.detail;
  std::filesystem::remove_all(corpus_dir);
}

TEST(Shrinker, DeterministicTrajectoryAcrossRunsJobsAndIsolation) {
  const ChaosSpec failing = GenerateSpec(7, 0);
  const OracleOptions options = FastOptions();
  ScopedEnv plant("DIBS_CHAOS_PLANT", "1");
  ASSERT_FALSE(CheckOracle(failing, "validate", options).passed);

  const ShrinkResult first = Shrink(failing, "validate", options);
  EXPECT_FALSE(CheckOracle(first.minimal, "validate", options).passed)
      << "shrunk spec must still fail the same oracle";
  EXPECT_LT(first.minimal.Size(), failing.Size());

  // Same inputs, same trajectory — re-run plain, then under a DIBS_JOBS
  // override (the oracle sweeps pin their own job counts, so the env knob
  // must not leak into the shrink path).
  const ShrinkResult again = Shrink(failing, "validate", options);
  EXPECT_EQ(first.trajectory, again.trajectory);
  EXPECT_EQ(EncodeChaosSpec(first.minimal), EncodeChaosSpec(again.minimal));

  {
    ScopedEnv jobs("DIBS_JOBS", "3");
    const ShrinkResult jobs3 = Shrink(failing, "validate", options);
    EXPECT_EQ(first.trajectory, jobs3.trajectory);
    EXPECT_EQ(EncodeChaosSpec(first.minimal), EncodeChaosSpec(jobs3.minimal));
  }
  {
    ScopedEnv isolate("DIBS_ISOLATE", "process");
    const ShrinkResult forked = Shrink(failing, "validate", options);
    EXPECT_EQ(first.trajectory, forked.trajectory);
    EXPECT_EQ(EncodeChaosSpec(first.minimal), EncodeChaosSpec(forked.minimal));
  }
}

TEST(Shrinker, FixpointIsOneWayMinimal) {
  // Every single transform applied to the shrinker's output either fails to
  // apply or no longer fails the oracle — i.e. the result is 1-minimal with
  // respect to the transform set, not just "smaller".
  const OracleOptions options = FastOptions();
  ScopedEnv plant("DIBS_CHAOS_PLANT", "1");
  const ShrinkResult result = Shrink(GenerateSpec(7, 0), "validate", options);
  const ShrinkResult again = Shrink(result.minimal, "validate", options);
  EXPECT_EQ(again.accepted_steps, 0);
  EXPECT_EQ(EncodeChaosSpec(again.minimal), EncodeChaosSpec(result.minimal));
}

TEST(Corpus, EntryRoundTripsAndRejectsMalformed) {
  CorpusEntry entry;
  entry.spec = GenerateSpec(3, 1);
  entry.oracle = "determinism";
  entry.detail = "records diverged at byte 42";
  entry.master_seed = 3;
  entry.found_case = 1;
  const std::string text = EncodeCorpusEntry(entry);
  const CorpusEntry back = DecodeCorpusEntry(text);
  EXPECT_EQ(back.oracle, entry.oracle);
  EXPECT_EQ(back.detail, entry.detail);
  EXPECT_EQ(back.master_seed, entry.master_seed);
  EXPECT_EQ(back.found_case, entry.found_case);
  EXPECT_EQ(EncodeChaosSpec(back.spec), EncodeChaosSpec(entry.spec));

  EXPECT_THROW(DecodeCorpusEntry("{}"), CodecError);        // no oracle/spec
  EXPECT_THROW(DecodeCorpusEntry("{\"oracle\":\"x\"}"), CodecError);
  EXPECT_THROW(DecodeCorpusEntry("garbage"), CodecError);
}

TEST(Corpus, ListIsSortedAndScopedToJson) {
  const std::string dir = TempDir("list");
  CorpusEntry entry;
  entry.spec = GenerateSpec(1, 0);
  entry.oracle = "validate";
  WriteCorpusEntry(dir, "bbb", entry);
  WriteCorpusEntry(dir, "aaa", entry);
  { std::ofstream(dir + "/notes.txt") << "ignored"; }
  const std::vector<std::string> entries = ListCorpus(dir);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(entries[0].find("aaa"), std::string::npos);
  EXPECT_NE(entries[1].find("bbb"), std::string::npos);
  EXPECT_TRUE(ListCorpus(dir + "/does-not-exist").empty());
  std::filesystem::remove_all(dir);
}

TEST(FuzzDriver, CleanStreamReportsOk) {
  FuzzOptions options;
  options.seed = 1;
  options.cases = 3;
  options.oracle = FastOptions();
  options.oracle.heavy_every = 0;  // light oracles only: keep this test quick
  std::ostringstream log;
  const FuzzReport report = RunFuzz(options, log);
  EXPECT_TRUE(report.ok()) << log.str();
  EXPECT_EQ(report.cases_run, 3);
}

}  // namespace
}  // namespace dibs::chaos
