// Checkpoint/restore contracts (src/ckpt):
//
//  - file format: every truncation and every single-bit flip of a valid
//    checkpoint is diagnosed as a typed CkptError — never decoded wrong;
//  - restore identity: a run resumed from a quiescent-barrier snapshot
//    finishes with results identical to the uninterrupted run, and the
//    restored state re-encodes to the exact bytes that were saved;
//  - degrade-to-replay: a damaged or mismatched checkpoint makes the
//    harness fall back to a from-scratch replay whose results equal the
//    uninterrupted baseline (correct-by-refusal, end to end);
//  - sweep resume: a process-isolated run SIGKILLed right after a barrier
//    is retried, restores the snapshot, and produces a byte-identical
//    record (modulo host-side wall timing and the attempt counter).

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/manager.h"
#include "src/exp/record_codec.h"
#include "src/exp/run_journal.h"
#include "src/exp/sweep_engine.h"
#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/util/json.h"

namespace dibs {
namespace {

using ckpt::CkptError;

// ---------------------------------------------------------------------------
// File-format corruption matrix

json::Value TinyState() {
  json::Value state = json::MakeObject();
  state.fields["format"] = json::MakeString(ckpt::kCkptFormat);
  state.fields["version"] = json::MakeInt(ckpt::kCkptVersion);
  state.fields["config_digest"] = json::MakeUint(42);
  state.fields["barrier"] = json::MakeInt(1);
  json::Value sim = json::MakeObject();
  sim.fields["now"] = json::MakeInt(1000);
  state.fields["sim"] = std::move(sim);
  state.fields["components"] = json::MakeObject();
  return state;
}

TEST(CkptFormatTest, RoundTrips) {
  const std::string text = ckpt::EncodeCheckpointFile(TinyState());
  const json::Value state = ckpt::DecodeCheckpointFile(text);
  EXPECT_EQ(json::ReadUint64(state, "config_digest", 0), 42u);
  EXPECT_EQ(json::ReadInt64(state, "barrier", 0), 1);
}

TEST(CkptFormatTest, EveryTruncationRejected) {
  const std::string text = ckpt::EncodeCheckpointFile(TinyState());
  for (size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(ckpt::DecodeCheckpointFile(text.substr(0, len)), CkptError)
        << "prefix of length " << len << " decoded";
  }
}

TEST(CkptFormatTest, EverySingleBitFlipRejected) {
  const std::string text = ckpt::EncodeCheckpointFile(TinyState());
  for (size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = text;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_THROW(ckpt::DecodeCheckpointFile(flipped), CkptError)
          << "flip of byte " << i << " bit " << bit << " decoded";
    }
  }
}

TEST(CkptFormatTest, WrongFormatMarkerRejected) {
  json::Value state = TinyState();
  state.fields["format"] = json::MakeString("not-a-ckpt");
  EXPECT_THROW(ckpt::DecodeCheckpointFile(ckpt::EncodeCheckpointFile(state)),
               CkptError);
}

TEST(CkptFormatTest, FutureVersionRejected) {
  json::Value state = TinyState();
  state.fields["version"] = json::MakeInt(ckpt::kCkptVersion + 1);
  EXPECT_THROW(ckpt::DecodeCheckpointFile(ckpt::EncodeCheckpointFile(state)),
               CkptError);
}

TEST(CkptFormatTest, MissingFileRejected) {
  EXPECT_THROW(ckpt::ReadCheckpointFile("/no/such/file.ckpt"), CkptError);
}

// ---------------------------------------------------------------------------
// Scenario-level restore identity

ExperimentConfig Tiny(ExperimentConfig c) {
  c.fat_tree_k = 4;
  c.incast_degree = 8;
  c.qps = 400;
  c.response_bytes = 4000;
  c.bg_interarrival = Time::Millis(40);
  c.duration = Time::Millis(60);
  c.drain = Time::Millis(40);
  c.seed = 7;
  return c;
}

// Every deterministic field of the result; restore != replay on ANY of
// these is a broken checkpoint, so compare exhaustively and exactly (the
// doubles too — bit-identical replay is the repo's contract).
void ExpectResultsEqual(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.qct99_ms, b.qct99_ms);
  EXPECT_EQ(a.bg_fct99_ms, b.bg_fct99_ms);
  EXPECT_EQ(a.bg_fct99_all_ms, b.bg_fct99_all_ms);
  EXPECT_EQ(a.qct.count, b.qct.count);
  EXPECT_EQ(a.qct.mean, b.qct.mean);
  EXPECT_EQ(a.qct.max, b.qct.max);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_launched, b.queries_launched);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.ttl_drops, b.ttl_drops);
  EXPECT_EQ(a.drops_by_reason, b.drops_by_reason);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.detoured_fraction, b.detoured_fraction);
  EXPECT_EQ(a.query_detour_share, b.query_detour_share);
  EXPECT_EQ(a.detour_count_p99, b.detour_count_p99);
  EXPECT_EQ(a.queueing_delay_us.count, b.queueing_delay_us.count);
  EXPECT_EQ(a.queueing_delay_us.mean, b.queueing_delay_us.mean);
  EXPECT_EQ(a.queueing_delay_us.max, b.queueing_delay_us.max);
  EXPECT_EQ(a.queueing_delay_us.p99, b.queueing_delay_us.p99);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.guard_trips, b.guard_trips);
  EXPECT_EQ(a.guard_transitions, b.guard_transitions);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

class CkptScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dibs_ckpt_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    for (const char* name : {"run.ckpt", "ckpt.run0.ckpt", "ckpt.run1.ckpt"}) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }
  std::string dir_;
};

TEST_F(CkptScenarioTest, ResumeFromFinalBarrierMatchesUninterruptedRun) {
  const ExperimentConfig config = Tiny(DibsConfig());
  const std::string path = dir_ + "/run.ckpt";
  const uint64_t digest = DigestConfig(config);

  Scenario full(config);
  full.ArmCheckpoints(path, Time::Millis(20), digest);
  const ScenarioResult uninterrupted = full.Run();
  ASSERT_EQ(::access(path.c_str(), F_OK), 0) << "no snapshot was written";

  // A fresh scenario restored from the last barrier replays only the tail
  // of the run, yet must land on the identical result.
  Scenario resumed(config);
  ASSERT_TRUE(resumed.TryRestoreCheckpoint(path, digest));
  EXPECT_TRUE(resumed.restored_from_checkpoint());
  ExpectResultsEqual(resumed.Run(), uninterrupted);
}

TEST_F(CkptScenarioTest, RestoredStateReencodesToTheSavedBytes) {
  const ExperimentConfig config = Tiny(DibsConfig());
  const std::string path = dir_ + "/run.ckpt";
  const uint64_t digest = DigestConfig(config);

  Scenario writer(config);
  writer.ArmCheckpoints(path, Time::Millis(20), digest);
  writer.Run();

  Scenario reader(config);
  ASSERT_TRUE(reader.TryRestoreCheckpoint(path, digest));
  const json::Value saved = ckpt::ReadCheckpointFile(path);
  const json::Value reencoded = ckpt::DecodeCheckpointFile(
      reader.checkpoint_manager()->EncodeSnapshot());
  // The sim clock/id-epoch/RNG and every component must re-encode to the
  // exact bytes that were restored (encoding is canonical, so equal bytes
  // iff equal state). Top-level barrier/digest fields are manager-local.
  for (const char* section : {"sim", "components"}) {
    const json::Value* a = json::Find(saved, section);
    const json::Value* b = json::Find(reencoded, section);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(json::Dump(*a), json::Dump(*b)) << "section " << section;
  }
}

TEST_F(CkptScenarioTest, DamagedCheckpointFallsBackToIdenticalReplay) {
  const ExperimentConfig config = Tiny(DctcpConfig());
  const std::string path = dir_ + "/run.ckpt";
  const uint64_t digest = DigestConfig(config);

  Scenario writer(config);
  writer.ArmCheckpoints(path, Time::Millis(20), digest);
  const ScenarioResult uninterrupted = writer.Run();

  // Tear the file mid-state-line, as a crash mid-write would without the
  // atomic replace (and as bit rot would with it).
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(text.size(), 100u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }

  Scenario victim(config);
  EXPECT_FALSE(victim.TryRestoreCheckpoint(path, digest));
  // Contract: a failed restore leaves the scenario dirty — rebuild and
  // replay from scratch, which must reproduce the uninterrupted run.
  Scenario replay(config);
  EXPECT_FALSE(replay.restored_from_checkpoint());
  ExpectResultsEqual(replay.Run(), uninterrupted);
}

TEST_F(CkptScenarioTest, ConfigDigestMismatchRefusesRestore) {
  const ExperimentConfig config = Tiny(DibsConfig());
  const std::string path = dir_ + "/run.ckpt";
  const uint64_t digest = DigestConfig(config);

  Scenario writer(config);
  writer.ArmCheckpoints(path, Time::Millis(20), digest);
  writer.Run();

  Scenario other(config);
  EXPECT_FALSE(other.TryRestoreCheckpoint(path, digest + 1));
}

// ---------------------------------------------------------------------------
// Sweep-level SIGKILL + resume (the production recovery path)

// Host-side fields that legitimately differ between executions: wall
// timing, and the attempt counter on the killed-and-resumed row.
std::string NormalizeHostFields(std::string line) {
  static const std::regex kWall(
      "\"wall_ms\":[^,]+,\"events_per_sec\":[^,]+,");
  static const std::regex kAttempts("\"attempts\":[0-9]+");
  line = std::regex_replace(line, kWall,
                            "\"wall_ms\":0,\"events_per_sec\":0,");
  return std::regex_replace(line, kAttempts, "\"attempts\":1");
}

TEST_F(CkptScenarioTest, KilledSweepRunResumesByteIdentical) {
  std::vector<RunSpec> runs(2);
  runs[0].index = 0;
  runs[0].config = Tiny(DibsConfig());
  runs[1].index = 1;
  runs[1].config = Tiny(DctcpConfig());

  SweepOptions opts;
  opts.jobs = 1;
  opts.progress = false;
  opts.isolate = IsolationMode::kProcess;
  opts.ckpt_dir = dir_;
  opts.ckpt_interval_ms = 20;

  const std::vector<RunRecord> baseline = SweepEngine(opts).RunAll("ckpt", runs);
  ASSERT_EQ(baseline.size(), 2u);
  ASSERT_EQ(baseline[0].status, RunStatus::kOk);

  // Kill run 0's child by SIGKILL right after its first durable barrier;
  // the retry must restore the snapshot and finish the run.
  SweepOptions kill_opts = opts;
  kill_opts.retry.max_attempts = 2;
  kill_opts.retry.initial_ms = 0;
  ASSERT_EQ(::setenv("DIBS_TEST_CKPT_KILL_RUN", "0", 1), 0);
  const std::vector<RunRecord> resumed = SweepEngine(kill_opts).RunAll("ckpt", runs);
  ASSERT_EQ(::unsetenv("DIBS_TEST_CKPT_KILL_RUN"), 0);

  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed[0].status, RunStatus::kOk);
  EXPECT_EQ(resumed[0].attempts, 2);  // died once, resumed once
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(NormalizeHostFields(EncodeRunRecord(resumed[i])),
              NormalizeHostFields(EncodeRunRecord(baseline[i])))
        << "run " << i;
  }
  // Finished runs retire their snapshots.
  EXPECT_NE(::access((dir_ + "/ckpt.run0.ckpt").c_str(), F_OK), 0);
  EXPECT_NE(::access((dir_ + "/ckpt.run1.ckpt").c_str(), F_OK), 0);
}

}  // namespace
}  // namespace dibs
