// FaultPlan tests: fluent builders append the right events, LinkFlap expands
// into down/up cycles, Sorted() orders by (time, insertion) stably, and the
// topology targeting helpers (TorOf / SwitchFacingLinks / SwitchNeighbors)
// resolve fault targets from a Topology.

#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/topo/builders.h"
#include "src/topo/topology.h"

namespace dibs::fault {
namespace {

TEST(FaultPlanTest, BuildersAppendTypedEvents) {
  FaultPlan plan;
  plan.LinkDown(3, Time::Millis(10))
      .LinkUp(3, Time::Millis(20))
      .SwitchCrash(7, Time::Millis(30))
      .SwitchRestart(7, Time::Millis(40))
      .DegradeLink(5, Time::Millis(50), 0.25, Time::Micros(10))
      .RestoreLink(5, Time::Millis(60));
  ASSERT_EQ(plan.size(), 6u);
  const std::vector<FaultEvent>& e = plan.events();
  EXPECT_EQ(e[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(e[0].target, 3);
  EXPECT_EQ(e[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(e[2].kind, FaultKind::kSwitchCrash);
  EXPECT_EQ(e[2].target, 7);
  EXPECT_EQ(e[3].kind, FaultKind::kSwitchRestart);
  EXPECT_EQ(e[4].kind, FaultKind::kDegradeLink);
  EXPECT_DOUBLE_EQ(e[4].loss_probability, 0.25);
  EXPECT_EQ(e[4].extra_jitter, Time::Micros(10));
  EXPECT_EQ(e[5].kind, FaultKind::kRestoreLink);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, LinkFlapExpandsIntoDownUpCycles) {
  FaultPlan plan;
  plan.LinkFlap(/*link=*/2, /*first_down=*/Time::Millis(10), /*down_for=*/Time::Millis(5),
                /*up_for=*/Time::Millis(3), /*cycles=*/2);
  ASSERT_EQ(plan.size(), 4u);
  const std::vector<FaultEvent>& e = plan.events();
  // down@10, up@15, down@18, up@23.
  EXPECT_EQ(e[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(e[0].at, Time::Millis(10));
  EXPECT_EQ(e[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(e[1].at, Time::Millis(15));
  EXPECT_EQ(e[2].kind, FaultKind::kLinkDown);
  EXPECT_EQ(e[2].at, Time::Millis(18));
  EXPECT_EQ(e[3].kind, FaultKind::kLinkUp);
  EXPECT_EQ(e[3].at, Time::Millis(23));
  for (const FaultEvent& ev : e) {
    EXPECT_EQ(ev.target, 2);
  }
}

TEST(FaultPlanTest, SortedOrdersByTimeThenInsertion) {
  FaultPlan plan;
  plan.LinkDown(9, Time::Millis(30))
      .SwitchCrash(1, Time::Millis(10))
      .LinkDown(8, Time::Millis(10))  // same time as the crash: stays after it
      .LinkUp(9, Time::Millis(20));
  const std::vector<FaultEvent> sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kSwitchCrash);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sorted[1].target, 8);
  EXPECT_EQ(sorted[2].kind, FaultKind::kLinkUp);
  EXPECT_EQ(sorted[3].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sorted[3].target, 9);
  // Sorted() is a view; the plan itself keeps insertion order.
  EXPECT_EQ(plan.events()[0].target, 9);
}

TEST(FaultPlanTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkDown), "link-down");
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkUp), "link-up");
  EXPECT_STREQ(FaultKindName(FaultKind::kSwitchCrash), "switch-crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kSwitchRestart), "switch-restart");
  EXPECT_STREQ(FaultKindName(FaultKind::kDegradeLink), "degrade-link");
  EXPECT_STREQ(FaultKindName(FaultKind::kRestoreLink), "restore-link");
}

// A hot ToR with two hosts and two aggregation neighbors, one of them
// double-linked (parallel uplinks) to exercise deduplication.
struct TorFixture {
  TorFixture() {
    tor = topo.AddNode(NodeKind::kSwitch, "tor");
    agg0 = topo.AddNode(NodeKind::kSwitch, "agg0");
    agg1 = topo.AddNode(NodeKind::kSwitch, "agg1");
    for (int i = 0; i < 2; ++i) {
      const int h = topo.AddHost("h" + std::to_string(i));
      host_links.push_back(topo.AddLink(h, tor, kGbps, Time::Micros(1)));
    }
    up0 = topo.AddLink(tor, agg0, kGbps, Time::Micros(1));
    up1 = topo.AddLink(tor, agg1, kGbps, Time::Micros(1));
    up1b = topo.AddLink(tor, agg1, kGbps, Time::Micros(1));
  }

  Topology topo;
  int tor = -1;
  int agg0 = -1;
  int agg1 = -1;
  std::vector<int> host_links;
  int up0 = -1;
  int up1 = -1;
  int up1b = -1;
};

TEST(FaultTargetingTest, TorOfResolvesTheHostsSwitch) {
  TorFixture f;
  EXPECT_EQ(TorOf(f.topo, /*h=*/0), f.tor);
  EXPECT_EQ(TorOf(f.topo, /*h=*/1), f.tor);
}

TEST(FaultTargetingTest, SwitchFacingLinksSkipHostLinks) {
  TorFixture f;
  EXPECT_EQ(SwitchFacingLinks(f.topo, f.tor), (std::vector<int>{f.up0, f.up1, f.up1b}));
  // Aggs see only their uplinks back to the ToR.
  EXPECT_EQ(SwitchFacingLinks(f.topo, f.agg0), (std::vector<int>{f.up0}));
}

TEST(FaultTargetingTest, SwitchNeighborsDeduplicateParallelLinks) {
  TorFixture f;
  EXPECT_EQ(SwitchNeighbors(f.topo, f.tor), (std::vector<int>{f.agg0, f.agg1}));
  EXPECT_EQ(SwitchNeighbors(f.topo, f.agg1), (std::vector<int>{f.tor}));
}

}  // namespace
}  // namespace dibs::fault
