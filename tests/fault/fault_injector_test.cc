// FaultInjector / fault-model integration tests against live Networks:
// downed links drain and blackhole with the right DropReason, the live FIB
// masks dead ports so ECMP re-picks among survivors, crashed switches eat
// packets already on the wire, degraded links lose and jitter packets
// seed-deterministically, and — the headline DIBS interaction — a switch
// whose every switch-facing neighbor crashed DROPS overflow packets instead
// of detouring them into the void.

#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/device/host_node.h"
#include "src/device/invariant_checker.h"
#include "src/device/network.h"
#include "src/fault/fault_plan.h"
#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/stats/detour_recorder.h"
#include "src/stats/fault_recorder.h"
#include "src/topo/builders.h"
#include "src/util/validation.h"

namespace dibs {
namespace {

// host0 -- sw -- host1; link 0 is h0's NIC link, link 1 is h1's.
Topology TwoHostTopology() {
  Topology t;
  const int sw = t.AddNode(NodeKind::kSwitch, "sw");
  for (int i = 0; i < 2; ++i) {
    const int h = t.AddHost("h" + std::to_string(i));
    t.AddLink(h, sw, kGbps, Time::Micros(1));
  }
  return t;
}

// Two equal-cost paths: h0 - s0 - {s1 | s2} - s3 - h1.
// Links: 0 = h0-s0, 1 = s0-s1, 2 = s0-s2, 3 = s1-s3, 4 = s2-s3, 5 = s3-h1.
// From s0, port 1 faces s1 and port 2 faces s2.
Topology DiamondTopology() {
  Topology t;
  const int s0 = t.AddNode(NodeKind::kSwitch, "s0");
  const int s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const int s2 = t.AddNode(NodeKind::kSwitch, "s2");
  const int s3 = t.AddNode(NodeKind::kSwitch, "s3");
  const int h0 = t.AddHost("h0");
  const int h1 = t.AddHost("h1");
  t.AddLink(h0, s0, kGbps, Time::Micros(1));
  t.AddLink(s0, s1, kGbps, Time::Micros(1));
  t.AddLink(s0, s2, kGbps, Time::Micros(1));
  t.AddLink(s1, s3, kGbps, Time::Micros(1));
  t.AddLink(s2, s3, kGbps, Time::Micros(1));
  t.AddLink(s3, h1, kGbps, Time::Micros(1));
  return t;
}

Packet RawPacket(Network& net, HostId src, HostId dst, FlowId flow = 1) {
  Packet p;
  p.uid = net.NextPacketUid();
  p.src = src;
  p.dst = dst;
  p.size_bytes = 1500;
  p.ttl = 64;
  p.flow = flow;
  p.sent_time = net.sim().Now();
  return p;
}

TEST(FaultModelTest, LinkDownDrainsQueueAndBlackholesThenRecovers) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);

  // 10 back-to-back packets pile up in h0's NIC queue (12us serialization
  // each). At t=30us packets 0-2 have entered the wire; 3-9 are still queued.
  for (int i = 0; i < 10; ++i) {
    net.host(0).Send(RawPacket(net, 0, 1));
  }
  sim.Schedule(Time::Micros(30), [&] { net.SetLinkAdminState(0, false); });
  sim.Run();

  EXPECT_FALSE(net.LinkUp(0));
  EXPECT_EQ(rec.drops(DropReason::kFaultLinkDown), 7u);
  EXPECT_EQ(rec.delivered_packets(), 3u);

  // While down, new sends are accepted by the host but blackholed at the NIC.
  EXPECT_TRUE(net.host(0).Send(RawPacket(net, 0, 1)));
  sim.Run();
  EXPECT_EQ(rec.drops(DropReason::kFaultLinkDown), 8u);

  // Back up: traffic flows again.
  net.SetLinkAdminState(0, true);
  EXPECT_TRUE(net.LinkUp(0));
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  EXPECT_EQ(rec.delivered_packets(), 4u);
  EXPECT_EQ(rec.total_drops(), 8u);
}

TEST(FaultInjectorTest, CompilesPlanIntoScheduledEventsAndRecordsRecovery) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  FaultRecorder frec;
  net.AddObserver(&frec);

  fault::FaultPlan plan;
  plan.LinkDown(0, Time::Micros(30)).LinkUp(0, Time::Micros(60));
  fault::FaultInjector injector(&net, plan, &frec);
  injector.Start();
  EXPECT_EQ(injector.events_scheduled(), 2u);

  for (int i = 0; i < 10; ++i) {
    net.host(0).Send(RawPacket(net, 0, 1));
  }
  // First delivery after the repair closes its recovery window.
  sim.Schedule(Time::Micros(70), [&] { net.host(0).Send(RawPacket(net, 0, 1)); });
  sim.Run();

  EXPECT_EQ(injector.events_applied(), 2u);
  EXPECT_EQ(frec.events_applied(), 1u);   // the breakage
  EXPECT_EQ(frec.events_repaired(), 1u);  // the heal
  EXPECT_TRUE(net.LinkUp(0));
  EXPECT_EQ(frec.blackholed_packets(), 7u);
  EXPECT_EQ(frec.drops(DropReason::kFaultLinkDown), 7u);
  ASSERT_EQ(frec.recovery_ms().size(), 1u);
  EXPECT_GT(frec.recovery_ms()[0], 0.0);
  EXPECT_LT(frec.recovery_ms()[0], 1.0);  // ~36us repair-to-delivery
  EXPECT_DOUBLE_EQ(frec.MaxRecoveryMs(), frec.recovery_ms()[0]);
}

TEST(FaultModelTest, FibMasksDeadPortsAndEcmpRePicks) {
  Simulator sim;
  Network net(&sim, DiamondTopology(), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);

  // Two equal-cost uplinks from s0 toward h1.
  ASSERT_EQ(net.fib().NextHopPorts(0, /*dst=*/1).size(), 2u);

  // Kill the s0-s1 path: the live view shrinks to s2's port; the pristine
  // table is untouched.
  net.SetLinkAdminState(1, false);
  ASSERT_EQ(net.fib().NextHopPorts(0, 1).size(), 1u);
  EXPECT_EQ(net.fib().NextHopPorts(0, 1)[0], 2);  // s0's port toward s2
  EXPECT_EQ(net.fib().AllNextHopPorts(0, 1).size(), 2u);

  // Every flow re-picks the surviving path: all packets deliver, zero drops.
  for (FlowId flow = 1; flow <= 8; ++flow) {
    for (int i = 0; i < 5; ++i) {
      net.host(0).Send(RawPacket(net, 0, 1, flow));
    }
  }
  sim.Run();
  EXPECT_EQ(rec.delivered_packets(), 40u);
  EXPECT_EQ(rec.total_drops(), 0u);

  // Restore: the pristine ECMP set comes back in port order.
  net.SetLinkAdminState(1, true);
  EXPECT_EQ(net.fib().NextHopPorts(0, 1), (std::vector<uint16_t>{1, 2}));
}

TEST(FaultModelTest, AllPathsDeadDropsAsFaultNoLiveRoute) {
  Simulator sim;
  Network net(&sim, DiamondTopology(), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);

  net.SetLinkAdminState(1, false);
  net.SetLinkAdminState(2, false);
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  // Routes exist in the pristine topology, so this is a fault drop, not a
  // routing bug.
  EXPECT_EQ(rec.drops(DropReason::kFaultNoLiveRoute), 1u);
  EXPECT_EQ(rec.delivered_packets(), 0u);
}

TEST(FaultModelTest, CrashedSwitchEatsPacketsAlreadyOnTheWire) {
  // h0 -(1us)- s0 -(20us)- s1 -(1us)- h1: the long middle hop keeps a packet
  // on the wire when s1 crashes under it.
  Topology t;
  const int s0 = t.AddNode(NodeKind::kSwitch, "s0");
  const int s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const int h0 = t.AddHost("h0");
  const int h1 = t.AddHost("h1");
  t.AddLink(h0, s0, kGbps, Time::Micros(1));
  t.AddLink(s0, s1, kGbps, Time::Micros(20));
  t.AddLink(s1, h1, kGbps, Time::Micros(1));

  Simulator sim;
  Network net(&sim, std::move(t), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);

  // The packet enters the s0->s1 wire at t=25us and would land at t=45us.
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Schedule(Time::Micros(40), [&] { net.SetSwitchOperational(s1, false); });
  sim.Run();

  EXPECT_FALSE(net.SwitchOperational(s1));
  EXPECT_TRUE(net.SwitchOperational(s0));
  EXPECT_EQ(rec.drops(DropReason::kFaultSwitchDown), 1u);
  EXPECT_EQ(rec.delivered_packets(), 0u);
  // Every link adjacent to the crashed switch is effectively down.
  EXPECT_FALSE(net.LinkUp(1));
  EXPECT_FALSE(net.LinkUp(2));
  EXPECT_TRUE(net.LinkUp(0));

  // Restart restores the adjacent links and the forwarding path.
  net.SetSwitchOperational(s1, true);
  EXPECT_TRUE(net.LinkUp(1));
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  EXPECT_EQ(rec.delivered_packets(), 1u);
}

// Runs `count` packets across a TwoHost network whose h0 NIC link is degraded,
// returning (delivered, lossy-dropped) for determinism comparisons.
std::pair<uint64_t, uint64_t> RunLossyLink(uint64_t seed, int count, double loss) {
  Simulator sim(seed);
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);
  net.SetLinkDegraded(0, loss, Time::Zero());
  for (int i = 0; i < count; ++i) {
    net.host(0).Send(RawPacket(net, 0, 1));
  }
  sim.Run();
  return {rec.delivered_packets(), rec.drops(DropReason::kFaultLossy)};
}

TEST(FaultModelTest, DegradedLinkLossIsBernoulliAndSeedDeterministic) {
  const auto [delivered, lost] = RunLossyLink(/*seed=*/5, /*count=*/200, /*loss=*/0.5);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(delivered + lost, 200u);
  // Loosely binomial around 100/100 — enough to show the coin is real.
  EXPECT_NEAR(static_cast<double>(lost), 100.0, 35.0);
  // Same seed, same losses, byte for byte.
  EXPECT_EQ(RunLossyLink(5, 200, 0.5), (std::pair<uint64_t, uint64_t>{delivered, lost}));
}

TEST(FaultModelTest, DegradedLinkJitterDelaysWithinBound) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    Network net(&sim, TwoHostTopology(), NetworkConfig{});
    net.SetLinkDegraded(0, /*loss_probability=*/0.0, Time::Micros(10));
    Time delivered;
    net.host(1).RegisterFlowReceiver(1, [&](Packet&&) { delivered = sim.Now(); });
    net.host(0).Send(RawPacket(net, 0, 1));
    sim.Run();
    return delivered;
  };
  const Time at = run(9);
  // Healthy baseline is 26us; jitter adds at most 10us on the degraded hop.
  EXPECT_GE(at, Time::Micros(26));
  EXPECT_LE(at, Time::Micros(36));
  EXPECT_EQ(run(9), at);  // the jitter draw is seeded

  // Restoring the link removes the jitter entirely.
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  net.SetLinkDegraded(0, 0.0, Time::Micros(10));
  net.SetLinkDegraded(0, 0.0, Time::Zero());
  Time clean;
  net.host(1).RegisterFlowReceiver(1, [&](Packet&&) { clean = sim.Now(); });
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  EXPECT_EQ(clean, Time::Micros(26));
}

// ---- ISSUE acceptance test ----
// A hot ToR whose EVERY switch-facing neighbor has crashed must DROP overflow
// packets (DropReason::kNoEligibleDetour: switch-facing ports exist but every
// one is down) rather than detour them into dead uplinks; with healthy
// neighbors the identical workload detours heavily.
struct HotTorFixture {
  HotTorFixture() {
    tor = topo.AddNode(NodeKind::kSwitch, "tor");
    const int agg0 = topo.AddNode(NodeKind::kSwitch, "agg0");
    const int agg1 = topo.AddNode(NodeKind::kSwitch, "agg1");
    for (int i = 0; i < 4; ++i) {
      const int h = topo.AddHost("h" + std::to_string(i));
      topo.AddLink(h, tor, kGbps, Time::Micros(1));
    }
    topo.AddLink(tor, agg0, kGbps, Time::Micros(1));
    topo.AddLink(tor, agg1, kGbps, Time::Micros(1));
  }

  // Hosts 1..3 incast host 0 through a 2-packet ToR buffer: the port toward
  // h0 overflows immediately and DIBS must look for detour capacity.
  void Blast(Network& net) {
    for (HostId src = 1; src <= 3; ++src) {
      for (int i = 0; i < 30; ++i) {
        Packet p = RawPacket(net, src, 0, /*flow=*/static_cast<FlowId>(src));
        p.ttl = 20;
        net.host(src).Send(std::move(p));
      }
    }
  }

  NetworkConfig Config() const {
    NetworkConfig cfg;
    cfg.switch_buffer_packets = 2;
    cfg.detour_policy = "random";
    return cfg;
  }

  Topology topo;
  int tor = -1;
};

TEST(FaultDibsInteractionTest, HealthyNeighborsAbsorbDetours) {
  HotTorFixture f;
  Simulator sim(17);
  Network net(&sim, f.topo, f.Config());
  f.Blast(net);
  sim.Run();
  EXPECT_GT(net.total_detours(), 0u);
}

TEST(FaultDibsInteractionTest, AllNeighborsCrashedMeansDropNotDetour) {
  validate::ScopedEnable on;  // the conservation ledger audits the whole run
  HotTorFixture f;
  Simulator sim(17);
  Network net(&sim, f.topo, f.Config());
  ASSERT_NE(net.invariant_checker(), nullptr);
  DetourRecorder rec;
  net.AddObserver(&rec);

  const std::vector<int> neighbors = fault::SwitchNeighbors(f.topo, f.tor);
  ASSERT_EQ(neighbors.size(), 2u);
  for (const int agg : neighbors) {
    net.SetSwitchOperational(agg, false);
  }

  f.Blast(net);
  sim.Run();

  // Not one packet was detoured — the policy saw every switch-facing port
  // down and declined — and not one reached a crashed neighbor.
  EXPECT_EQ(net.total_detours(), 0u);
  EXPECT_GT(rec.drops(DropReason::kNoEligibleDetour), 0u);
  EXPECT_EQ(rec.drops(DropReason::kNoDetourAvailable), 0u);
  EXPECT_EQ(rec.drops(DropReason::kFaultSwitchDown), 0u);
  EXPECT_EQ(rec.drops(DropReason::kTtlExpired), 0u);

  // Full accounting: 90 injected, each delivered or dropped, ledger balanced.
  const InvariantChecker& checker = *net.invariant_checker();
  EXPECT_EQ(checker.injected(), 90u);
  EXPECT_EQ(checker.injected(), checker.delivered() + checker.dropped());
  EXPECT_NO_THROW(checker.CheckQuiescent());
  EXPECT_NO_THROW(checker.CheckBalanced(net.TotalBufferedPackets()));
}

// Scenario-level determinism: an end-to-end run with a full fault plan
// (flap + degrade + crash) is reproducible from its seed alone.
TEST(FaultScenarioTest, SameSeedSameFaultsSameResult) {
  auto run = [] {
    ExperimentConfig c = DibsConfig();
    c.topology = TopologyKind::kLinear;
    c.incast_degree = 8;
    c.duration = Time::Millis(60);
    c.seed = 11;
    c.faults.LinkFlap(/*link=*/2, Time::Millis(10), Time::Millis(5), Time::Millis(5), 2)
        .DegradeLink(/*link=*/4, Time::Millis(5), 0.02, Time::Micros(5))
        .RestoreLink(4, Time::Millis(50));
    return RunScenario(c);
  };
  const ScenarioResult a = run();
  const ScenarioResult b = run();
  EXPECT_GT(a.fault_events_applied, 0u);
  EXPECT_EQ(a.qct99_ms, b.qct99_ms);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.drops_by_reason, b.drops_by_reason);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.fault_flows_stalled, b.fault_flows_stalled);
  EXPECT_EQ(a.fault_flows_recovered, b.fault_flows_recovered);
  EXPECT_EQ(a.fault_recovery_ms_max, b.fault_recovery_ms_max);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// FaultRecorder bookkeeping in isolation: fault-touched flows split into
// recovered vs stalled, and a repair's window closes on the next delivery.
TEST(FaultRecorderTest, FlowsSplitIntoRecoveredAndStalled) {
  FaultRecorder rec;
  Packet a;
  a.uid = 1;
  a.flow = 10;
  Packet b;
  b.uid = 2;
  b.flow = 20;
  rec.OnDrop(0, a, DropReason::kFaultLinkDown, Time::Millis(1));
  rec.OnDrop(0, b, DropReason::kFaultLossy, Time::Millis(2));
  rec.OnDrop(0, b, DropReason::kQueueOverflow, Time::Millis(3));  // not a fault
  EXPECT_EQ(rec.blackholed_packets(), 2u);
  rec.NoteFlowCompleted(10);
  rec.NoteFlowCompleted(99);  // fault-free flow: irrelevant
  EXPECT_EQ(rec.FlowsRecovered(), 1u);  // flow 10
  EXPECT_EQ(rec.FlowsStalled(), 1u);    // flow 20

  rec.OnFaultApplied(Time::Millis(1));
  rec.OnFaultRepaired(Time::Millis(5));
  EXPECT_TRUE(rec.recovery_ms().empty());
  rec.OnHostDeliver(0, a, Time::Millis(7));
  ASSERT_EQ(rec.recovery_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.recovery_ms()[0], 2.0);
  // Later deliveries do not reopen the closed window.
  rec.OnHostDeliver(0, a, Time::Millis(9));
  EXPECT_EQ(rec.recovery_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.MaxRecoveryMs(), 2.0);
}

}  // namespace
}  // namespace dibs
