#include "src/device/network.h"

#include <gtest/gtest.h>

#include "src/device/host_node.h"
#include "src/device/switch_node.h"
#include "src/net/droptail_queue.h"
#include "src/net/pfabric_queue.h"
#include "src/topo/builders.h"

namespace dibs {
namespace {

TEST(NetworkTest, BuildsPaperFatTree) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  EXPECT_EQ(net.num_hosts(), 128);
  EXPECT_EQ(net.switch_ids().size(), 80u);
  for (int sw : net.switch_ids()) {
    EXPECT_EQ(net.switch_at(sw).num_ports(), 8u);
  }
}

TEST(NetworkTest, PacketUidsAreUnique) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  const uint64_t a = net.NextPacketUid();
  const uint64_t b = net.NextPacketUid();
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
}

TEST(NetworkTest, SwitchQueuesHonorConfig) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 37;
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  for (int sw : net.switch_ids()) {
    SwitchNode& node = net.switch_at(sw);
    for (uint16_t i = 0; i < node.num_ports(); ++i) {
      EXPECT_EQ(node.port(i).queue().capacity_packets(), 37u);
    }
  }
}

TEST(NetworkTest, PfabricModeInstallsPriorityQueues) {
  NetworkConfig cfg;
  cfg.pfabric_queues = true;
  cfg.pfabric_buffer_packets = 24;
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  SwitchNode& node = net.switch_at(net.switch_ids()[0]);
  EXPECT_NE(dynamic_cast<PfabricQueue*>(&node.port(0).queue()), nullptr);
  EXPECT_EQ(node.port(0).queue().capacity_packets(), 24u);
}

TEST(NetworkTest, SharedBufferModeMakesUnboundedPerPortQueues) {
  NetworkConfig cfg;
  cfg.use_shared_buffer = true;
  cfg.shared_buffer_packets = 64;
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  SwitchNode& node = net.switch_at(net.switch_ids()[0]);
  // Per-port static capacity reports 0 (pool-managed).
  EXPECT_EQ(node.port(0).queue().capacity_packets(), 0u);
}

TEST(NetworkTest, SharedBufferCapsWholeSwitch) {
  NetworkConfig cfg;
  cfg.use_shared_buffer = true;
  cfg.shared_buffer_packets = 8;
  cfg.shared_buffer_alpha = 100.0;  // effectively only the pool cap binds
  cfg.detour_policy = "none";
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  // Blast 50 packets from hosts 0,1 (same edge) to host 2 in one instant:
  // the shared pool (8 slots) + in-flight transmissions bound acceptance.
  int received = 0;
  net.host(2).RegisterFlowReceiver(1, [&](Packet&& p) { ++received; });
  for (int i = 0; i < 25; ++i) {
    for (HostId src : {0, 1}) {
      Packet p;
      p.uid = net.NextPacketUid();
      p.src = src;
      p.dst = 2;
      p.size_bytes = 1500;
      p.ttl = 64;
      p.flow = 1;
      net.host(src).Send(std::move(p));
    }
  }
  sim.Run();
  EXPECT_GT(net.total_drops(), 0u);
  EXPECT_LT(received, 50);
  EXPECT_GT(received, 0);
}

TEST(NetworkTest, ObserverSeesDeliveries) {
  struct CountingObserver : NetworkObserver {
    int delivered = 0;
    void OnHostDeliver(HostId host, const Packet& p, Time at) override { ++delivered; }
  };
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  CountingObserver obs;
  net.AddObserver(&obs);
  Packet p;
  p.uid = net.NextPacketUid();
  p.src = 0;
  p.dst = 5;
  p.size_bytes = 100;
  p.ttl = 64;
  p.flow = 9;
  net.host(0).Send(std::move(p));
  sim.Run();
  EXPECT_EQ(obs.delivered, 1);
  EXPECT_EQ(net.total_delivered(), 1u);
}

TEST(NetworkTest, DetourPolicyFactoryWiring) {
  NetworkConfig cfg;
  cfg.detour_policy = "load-aware";
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), cfg);
  EXPECT_EQ(net.detour_policy().name(), "load-aware");
}

// Every built-in topology builds a functioning network end to end.
class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, AnyHostReachesAnyHost) {
  Topology topo;
  switch (GetParam()) {
    case 0:
      topo = BuildEmulabTestbed();
      break;
    case 1: {
      FatTreeOptions o;
      o.k = 4;
      topo = BuildFatTree(o);
      break;
    }
    case 2:
      topo = BuildLeafSpine(LeafSpineOptions{});
      break;
    case 3:
      topo = BuildLinear(4, 2);
      break;
    case 4:
      topo = BuildJellyFish(JellyFishOptions{});
      break;
  }
  Simulator sim;
  Network net(&sim, std::move(topo), NetworkConfig{});
  const HostId last = static_cast<HostId>(net.num_hosts() - 1);
  int received = 0;
  net.host(last).RegisterFlowReceiver(1, [&](Packet&& p) { ++received; });
  net.host(0).RegisterFlowReceiver(1, [&](Packet&& p) { ++received; });
  for (HostId src : {static_cast<HostId>(0), last}) {
    Packet p;
    p.uid = net.NextPacketUid();
    p.src = src;
    p.dst = src == 0 ? last : 0;
    p.size_bytes = 1500;
    p.ttl = 64;
    p.flow = 1;
    net.host(src).Send(std::move(p));
  }
  sim.Run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.total_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologySweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace dibs
