// Ethernet flow control (§6 comparison substrate): pause/resume mechanics,
// losslessness, backpressure cascades, and the head-of-line blocking that
// distinguishes PFC from DIBS.

#include <gtest/gtest.h>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/device/switch_node.h"
#include "src/topo/builders.h"
#include "tests/transport/transport_test_util.h"

namespace dibs {
namespace {

Packet RawPacket(Network& net, HostId src, HostId dst, FlowId flow = 1) {
  Packet p;
  p.uid = net.NextPacketUid();
  p.src = src;
  p.dst = dst;
  p.size_bytes = 1500;
  p.ttl = 64;
  p.flow = flow;
  return p;
}

NetworkConfig PfcConfig(size_t buffer = 20, size_t xoff = 10, size_t xon = 5) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = buffer;
  cfg.ecn_threshold_packets = 0;
  cfg.pfc_enabled = true;
  cfg.pfc_xoff_packets = xoff;
  cfg.pfc_xon_packets = xon;
  return cfg;
}

TEST(PortPauseTest, PausedPortHoldsQueue) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  HostNode& h0 = net.host(0);
  h0.SetPortPaused(0, true);
  net.host(5).RegisterFlowReceiver(1, [&](Packet&&) { FAIL() << "delivered while paused"; });
  h0.Send(RawPacket(net, 0, 5));
  sim.RunFor(Time::Millis(5));
  EXPECT_EQ(h0.nic().packets_sent(), 0u);
  EXPECT_EQ(h0.nic().queue().size_packets(), 1u);
}

TEST(PortPauseTest, UnpauseKicksTransmitter) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  HostNode& h0 = net.host(0);
  bool got = false;
  net.host(5).RegisterFlowReceiver(1, [&](Packet&&) { got = true; });
  h0.SetPortPaused(0, true);
  h0.Send(RawPacket(net, 0, 5));
  sim.RunFor(Time::Millis(1));
  EXPECT_FALSE(got);
  h0.SetPortPaused(0, false);
  sim.Run();
  EXPECT_TRUE(got);
}

TEST(PortPauseTest, PauseDoesNotRecallPacketOnWire) {
  Simulator sim;
  Network net(&sim, BuildEmulabTestbed(), NetworkConfig{});
  HostNode& h0 = net.host(0);
  int delivered = 0;
  net.host(5).RegisterFlowReceiver(1, [&](Packet&&) { ++delivered; });
  h0.Send(RawPacket(net, 0, 5));
  h0.Send(RawPacket(net, 0, 5));
  // Pause mid-serialization of the first packet: it still completes; the
  // second stays queued.
  sim.RunFor(Time::Micros(5));
  h0.SetPortPaused(0, true);
  sim.RunFor(Time::Millis(2));
  EXPECT_EQ(delivered, 1);
  h0.SetPortPaused(0, false);
  sim.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(FlowControlTest, IncastTriggersPauseAndStaysLossless) {
  Simulator sim(3);
  Network net(&sim, BuildEmulabTestbed(), PfcConfig());
  // 5 senders x 40 raw packets would overflow a 20-pkt droptail queue badly.
  for (HostId src = 0; src < 5; ++src) {
    for (int i = 0; i < 40; ++i) {
      net.host(src).Send(RawPacket(net, src, 5, /*flow=*/static_cast<FlowId>(src + 1)));
    }
  }
  sim.Run();
  EXPECT_EQ(net.total_delivered(), 200u);
  EXPECT_EQ(net.total_drops(), 0u);
  uint64_t pauses = 0;
  for (int sw : net.switch_ids()) {
    pauses += net.switch_at(sw).pause_events();
  }
  EXPECT_GT(pauses, 0u);
  // All switches resumed once drained.
  for (int sw : net.switch_ids()) {
    EXPECT_FALSE(net.switch_at(sw).pausing_neighbors());
    for (uint16_t i = 0; i < net.switch_at(sw).num_ports(); ++i) {
      EXPECT_FALSE(net.switch_at(sw).port(i).paused());
    }
  }
}

TEST(FlowControlTest, WithoutPfcSameBurstDrops) {
  NetworkConfig cfg = PfcConfig();
  cfg.pfc_enabled = false;
  Simulator sim(3);
  Network net(&sim, BuildEmulabTestbed(), cfg);
  for (HostId src = 0; src < 5; ++src) {
    for (int i = 0; i < 40; ++i) {
      net.host(src).Send(RawPacket(net, src, 5, /*flow=*/static_cast<FlowId>(src + 1)));
    }
  }
  sim.Run();
  EXPECT_GT(net.total_drops(), 0u);
  EXPECT_LT(net.total_delivered(), 200u);
}

TEST(FlowControlTest, BackpressureCascadesToSenderNic) {
  Simulator sim(5);
  Network net(&sim, BuildEmulabTestbed(), PfcConfig(20, 10, 5));
  for (HostId src = 0; src < 5; ++src) {
    for (int i = 0; i < 60; ++i) {
      net.host(src).Send(RawPacket(net, src, 5, static_cast<FlowId>(src + 1)));
    }
  }
  // Early in the burst, some sender NIC must have been paused.
  bool any_nic_paused = false;
  for (int step = 0; step < 40 && !any_nic_paused; ++step) {
    sim.RunFor(Time::Micros(50));
    for (HostId h = 0; h < 5; ++h) {
      any_nic_paused |= net.host(h).nic().paused();
    }
  }
  EXPECT_TRUE(any_nic_paused);
  sim.Run();
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(FlowControlTest, PfcWithTcpIncastIsLosslessButHolBlocks) {
  // End-to-end with DCTCP endpoints: PFC absorbs the incast without loss, but
  // an innocent cross-rack flow sharing the paused links finishes slower than
  // with DIBS (head-of-line blocking, the §6 argument for detouring).
  auto run = [](bool pfc, const std::string& detour) {
    NetworkConfig cfg;
    cfg.switch_buffer_packets = 50;
    cfg.ecn_threshold_packets = 20;
    cfg.pfc_enabled = pfc;
    cfg.pfc_xoff_packets = 35;  // of the 50-packet port budget
    cfg.pfc_xon_packets = 15;
    cfg.detour_policy = detour;
    TransportHarness h(BuildEmulabTestbed(), cfg, TransportKind::kDctcp,
                       TcpConfig::DibsDefault(), /*seed=*/9);
    // Incast: hosts 0-3 -> host 5. Victim: host 4 -> host 1 (crosses the
    // same aggregation layer but different destination).
    for (HostId src = 0; src < 4; ++src) {
      h.StartFlow(src, 5, 60000, TrafficClass::kQuery);
    }
    const FlowId victim = h.StartFlow(4, 1, 20000, TrafficClass::kBackground);
    h.Run();
    struct Out {
      Time victim_fct;
      uint64_t drops;
    } out;
    out.victim_fct = h.ResultFor(victim)->fct;
    out.drops = h.net().total_drops();
    return out;
  };
  const auto pfc = run(true, "none");
  const auto dibs = run(false, "random");
  EXPECT_EQ(pfc.drops, 0u);
  EXPECT_EQ(dibs.drops, 0u);
  // DIBS's victim flow must not be slower than PFC's (typically faster).
  EXPECT_LE(dibs.victim_fct, pfc.victim_fct);
}

TEST(PacketLevelEcmpTest, SpraysOnePacketFlowAcrossUplinks) {
  NetworkConfig cfg;
  cfg.packet_level_ecmp = true;
  Simulator sim(11);
  Network net(&sim, BuildPaperFatTree(), cfg);
  net.host(127).RegisterFlowReceiver(1, [](Packet&&) {});
  for (int i = 0; i < 200; ++i) {
    net.host(0).Send(RawPacket(net, 0, 127, /*flow=*/1));
  }
  sim.Run();
  // With flow-level ECMP one uplink of host 0's edge switch would carry all
  // 200 packets; with spraying all 4 carry some.
  SwitchNode& edge = net.switch_at(net.topology().ports(net.topology().host_node(0))[0].neighbor);
  int uplinks_used = 0;
  for (uint16_t i = 0; i < edge.num_ports(); ++i) {
    if (edge.port(i).peer_is_switch() && edge.port(i).packets_sent() > 0) {
      ++uplinks_used;
    }
  }
  EXPECT_EQ(uplinks_used, 4);
}

TEST(PacketLevelEcmpTest, FlowLevelKeepsOnePath) {
  Simulator sim(11);
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  net.host(127).RegisterFlowReceiver(1, [](Packet&&) {});
  for (int i = 0; i < 200; ++i) {
    net.host(0).Send(RawPacket(net, 0, 127, /*flow=*/1));
  }
  sim.Run();
  SwitchNode& edge = net.switch_at(net.topology().ports(net.topology().host_node(0))[0].neighbor);
  int uplinks_used = 0;
  for (uint16_t i = 0; i < edge.num_ports(); ++i) {
    if (edge.port(i).peer_is_switch() && edge.port(i).packets_sent() > 0) {
      ++uplinks_used;
    }
  }
  EXPECT_EQ(uplinks_used, 1);
}

}  // namespace
}  // namespace dibs
