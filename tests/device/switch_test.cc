#include "src/device/switch_node.h"

#include <gtest/gtest.h>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/stats/detour_recorder.h"
#include "src/topo/builders.h"
#include "src/trace/journey.h"
#include "src/trace/trace_bus.h"

namespace dibs {
namespace {

Packet RawPacket(Network& net, HostId src, HostId dst, uint8_t ttl = 64, FlowId flow = 1) {
  Packet p;
  p.uid = net.NextPacketUid();
  p.src = src;
  p.dst = dst;
  p.size_bytes = 1500;
  p.ttl = ttl;
  p.flow = flow;
  p.sent_time = net.sim().Now();
  return p;
}

TEST(SwitchTest, ForwardsAcrossFatTree) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  bool got = false;
  net.host(127).RegisterFlowReceiver(1, [&](Packet&& p) { got = true; });
  net.host(0).Send(RawPacket(net, 0, 127));
  sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(SwitchTest, TtlDecrementsPerSwitchHop) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  uint8_t arrived_ttl = 0;
  net.host(127).RegisterFlowReceiver(1, [&](Packet&& p) { arrived_ttl = p.ttl; });
  net.host(0).Send(RawPacket(net, 0, 127, /*ttl=*/64));
  sim.Run();
  // Cross-pod path: edge, aggr, core, aggr, edge = 5 switch hops.
  EXPECT_EQ(arrived_ttl, 64 - 5);
}

TEST(SwitchTest, TtlExpiryDropsPacket) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  DetourRecorder rec;
  net.AddObserver(&rec);
  bool got = false;
  net.host(127).RegisterFlowReceiver(1, [&](Packet&& p) { got = true; });
  net.host(0).Send(RawPacket(net, 0, 127, /*ttl=*/3));  // needs 5 switch hops
  sim.Run();
  EXPECT_FALSE(got);
  EXPECT_EQ(rec.drops(DropReason::kTtlExpired), 1u);
}

TEST(SwitchTest, IntraPodTrafficStaysCheap) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  uint8_t arrived_ttl = 0;
  net.host(1).RegisterFlowReceiver(1, [&](Packet&& p) { arrived_ttl = p.ttl; });
  // Hosts 0 and 1 share an edge switch: 1 switch hop.
  net.host(0).Send(RawPacket(net, 0, 1, /*ttl=*/64));
  sim.Run();
  EXPECT_EQ(arrived_ttl, 63);
}

class OverflowFixture : public ::testing::Test {
 protected:
  // Small 10-packet buffers force overflow with a modest burst. All senders
  // target host 0 through its edge switch. (Buffers of 1-2 packets are so
  // small that even DIBS legitimately drops when every eligible port fills —
  // 10 leaves the fabric enough detour capacity to be lossless.)
  void Run(const std::string& policy, int senders = 5, int packets_each = 10) {
    NetworkConfig cfg;
    cfg.switch_buffer_packets = 10;
    cfg.ecn_threshold_packets = 0;
    cfg.detour_policy = policy;
    sim_ = std::make_unique<Simulator>(7);
    net_ = std::make_unique<Network>(sim_.get(), BuildPaperFatTree(), cfg);
    net_->AddObserver(&rec_);
    net_->host(0).RegisterFlowReceiver(1, [&](Packet&& p) { ++received_; });
    for (int s = 1; s <= senders; ++s) {
      for (int i = 0; i < packets_each; ++i) {
        // Distinct flows so ECMP spreads them; same flow id for demux (all
        // flows use id 1 here since we only count arrivals).
        Packet p = RawPacket(*net_, static_cast<HostId>(s), 0, 255, /*flow=*/1);
        net_->host(static_cast<HostId>(s)).Send(std::move(p));
      }
    }
    sim_->Run();
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  DetourRecorder rec_;
  int received_ = 0;
};

TEST_F(OverflowFixture, DropTailDropsUnderBurst) {
  Run("none");
  EXPECT_GT(net_->total_drops(), 0u);
  EXPECT_EQ(net_->total_detours(), 0u);
  EXPECT_LT(received_, 50);
}

TEST_F(OverflowFixture, DibsDetoursInsteadOfDropping) {
  Run("random");
  EXPECT_GT(net_->total_detours(), 0u);
  EXPECT_EQ(net_->total_drops(), 0u);
  EXPECT_EQ(received_, 50);  // every packet eventually arrives
}

TEST_F(OverflowFixture, DetouredPacketsGetCeMarkOnlyIfEct) {
  Run("random");
  // Raw packets had ect=false: no CE marks despite detours.
  EXPECT_GT(net_->total_detours(), 0u);
  EXPECT_EQ(rec_.delivered_marked(), 0u);
}

TEST(SwitchTest, DetouredEctPacketsAreCeMarked) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 10;
  cfg.detour_policy = "random";
  Simulator sim(7);
  Network net(&sim, BuildPaperFatTree(), cfg);
  DetourRecorder rec;
  net.AddObserver(&rec);
  int received = 0;
  net.host(0).RegisterFlowReceiver(1, [&](Packet&& p) { ++received; });
  for (int s = 1; s <= 5; ++s) {
    for (int i = 0; i < 10; ++i) {
      Packet p;
      p.uid = net.NextPacketUid();
      p.src = static_cast<HostId>(s);
      p.dst = 0;
      p.size_bytes = 1500;
      p.ttl = 64;
      p.ect = true;
      p.flow = 1;
      net.host(static_cast<HostId>(s)).Send(std::move(p));
    }
  }
  sim.Run();
  EXPECT_GT(net.total_detours(), 0u);
  EXPECT_GT(rec.delivered_marked(), 0u);
  EXPECT_EQ(received, 50);
}

TEST(SwitchTest, DetourCountsRecordedOnPackets) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 1;
  cfg.detour_policy = "random";
  Simulator sim(11);
  Network net(&sim, BuildPaperFatTree(), cfg);
  uint32_t max_detours = 0;
  net.host(0).RegisterFlowReceiver(1, [&](Packet&& p) {
    max_detours = std::max<uint32_t>(max_detours, p.detour_count);
  });
  for (int s = 1; s <= 8; ++s) {
    for (int i = 0; i < 10; ++i) {
      Packet p;
      p.uid = net.NextPacketUid();
      p.src = static_cast<HostId>(s);
      p.dst = 0;
      p.size_bytes = 1500;
      p.ttl = 255;
      p.flow = static_cast<FlowId>(s);
      net.host(static_cast<HostId>(s)).Send(std::move(p));
    }
  }
  sim.Run();
  EXPECT_GT(max_detours, 0u);
}

TEST(SwitchTest, JourneyRecordsDetourHops) {
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 1;
  cfg.detour_policy = "random";
  Simulator sim(13);
  Network net(&sim, BuildPaperFatTree(), cfg);
  TraceBus bus;
  JourneyBuilder journeys;
  bus.AddSink(&journeys);
  net.AttachTraceBus(&bus);
  for (int s = 1; s <= 8; ++s) {
    for (int i = 0; i < 10; ++i) {
      Packet p;
      p.uid = net.NextPacketUid();
      p.src = static_cast<HostId>(s);
      p.dst = 0;
      p.size_bytes = 1500;
      p.ttl = 255;
      p.flow = static_cast<FlowId>(s);
      net.host(static_cast<HostId>(s)).Send(std::move(p));
    }
  }
  sim.Run();
  // At least one delivered packet was detoured, and its reconstructed
  // journey shows the detoured hop with non-decreasing hop times.
  const PacketJourney* detoured = nullptr;
  for (const auto& [uid, j] : journeys.journeys()) {
    if (j.delivered && j.detour_count > 0) {
      detoured = &j;
      break;
    }
  }
  ASSERT_NE(detoured, nullptr);
  bool any_detoured_hop = false;
  for (const JourneyHop& hop : detoured->hops) {
    any_detoured_hop |= hop.detoured;
  }
  EXPECT_TRUE(any_detoured_hop);
  for (size_t i = 1; i < detoured->hops.size(); ++i) {
    EXPECT_GE(detoured->hops[i].enqueue_at, detoured->hops[i - 1].enqueue_at);
  }
}

TEST(SwitchTest, PfcStormWithAllUplinksPausedDropsAsNoEligibleDetour) {
  // Fabric-wide PFC storm seen from one edge switch: every switch-facing
  // port is paused, so when the host-facing queue overflows the eligible
  // detour set is structurally empty. That is kNoEligibleDetour — distinct
  // from kNoDetourAvailable, which means live candidates existed but all
  // were full.
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 2;
  cfg.ecn_threshold_packets = 0;
  cfg.detour_policy = "random";
  Simulator sim(7);
  Network net(&sim, BuildPaperFatTree(), cfg);
  DetourRecorder rec;
  net.AddObserver(&rec);
  int received = 0;
  net.host(0).RegisterFlowReceiver(1, [&](Packet&&) { ++received; });
  SwitchNode& edge =
      net.switch_at(net.topology().ports(net.topology().host_node(0))[0].neighbor);
  for (uint16_t i = 0; i < edge.num_ports(); ++i) {
    if (edge.port(i).peer_is_switch()) {
      edge.SetPortPaused(i, true);
    }
  }
  // 3:1 overload on host 0's port from rack-mates; the 2-packet queue fills
  // and every overflow packet reaches the detour decision point.
  for (HostId s = 1; s <= 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      net.host(s).Send(RawPacket(net, s, 0));
    }
  }
  sim.Run();
  EXPECT_GT(rec.drops(DropReason::kNoEligibleDetour), 0u);
  EXPECT_EQ(rec.drops(DropReason::kNoDetourAvailable), 0u);
  EXPECT_EQ(net.total_detours(), 0u);  // nothing eligible, so nothing moved
  EXPECT_GT(received, 0);              // the desired queue still drains
}

TEST(SwitchTest, PartialPauseStillDetoursWithoutEligibilityDrops) {
  // Same burst, but one uplink stays live: the eligible set is non-empty, so
  // overflow detours instead of dying as no-eligible-detour.
  NetworkConfig cfg;
  cfg.switch_buffer_packets = 2;
  cfg.ecn_threshold_packets = 0;
  cfg.detour_policy = "random";
  Simulator sim(7);
  Network net(&sim, BuildPaperFatTree(), cfg);
  DetourRecorder rec;
  net.AddObserver(&rec);
  net.host(0).RegisterFlowReceiver(1, [](Packet&&) {});
  SwitchNode& edge =
      net.switch_at(net.topology().ports(net.topology().host_node(0))[0].neighbor);
  bool spared_one = false;
  for (uint16_t i = 0; i < edge.num_ports(); ++i) {
    if (edge.port(i).peer_is_switch()) {
      if (!spared_one) {
        spared_one = true;
        continue;
      }
      edge.SetPortPaused(i, true);
    }
  }
  for (HostId s = 1; s <= 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      net.host(s).Send(RawPacket(net, s, 0));
    }
  }
  sim.Run();
  EXPECT_GT(net.total_detours(), 0u);
  EXPECT_EQ(rec.drops(DropReason::kNoEligibleDetour), 0u);
}

TEST(SwitchTest, BufferedPacketAccounting) {
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  // K=8 switch: 8 ports * 100 packets.
  SwitchNode& sw = net.switch_at(net.switch_ids()[0]);
  EXPECT_EQ(sw.num_ports(), 8u);
  EXPECT_EQ(sw.buffer_capacity_packets(), 800u);
  EXPECT_EQ(sw.buffered_packets(), 0u);
}

}  // namespace
}  // namespace dibs
