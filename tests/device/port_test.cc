#include "src/device/port.h"

#include <gtest/gtest.h>

#include "src/device/network.h"
#include "src/device/host_node.h"
#include "src/topo/builders.h"

namespace dibs {
namespace {

// Two hosts hanging off one switch: host0 -- sw -- host1, 1Gbps, 1us delay.
Topology TwoHostTopology() {
  Topology t;
  const int sw = t.AddNode(NodeKind::kSwitch, "sw");
  for (int i = 0; i < 2; ++i) {
    const int h = t.AddHost("h" + std::to_string(i));
    t.AddLink(h, sw, kGbps, Time::Micros(1));
  }
  return t;
}

Packet RawPacket(Network& net, HostId src, HostId dst, uint32_t size = 1500) {
  Packet p;
  p.uid = net.NextPacketUid();
  p.src = src;
  p.dst = dst;
  p.size_bytes = size;
  p.ttl = 64;
  p.flow = 1;
  p.sent_time = net.sim().Now();
  return p;
}

TEST(PortTest, EndToEndLatencyIsSerializationPlusPropagation) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  Time delivered;
  net.host(1).RegisterFlowReceiver(1, [&](Packet&& p) { delivered = sim.Now(); });

  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  // Two hops: (12us serialization + 1us propagation) each = 26us.
  EXPECT_EQ(delivered, Time::Micros(26));
}

TEST(PortTest, SmallPacketsAreFaster) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  Time delivered;
  net.host(1).RegisterFlowReceiver(1, [&](Packet&& p) { delivered = sim.Now(); });

  net.host(0).Send(RawPacket(net, 0, 1, /*size=*/40));  // ACK-sized
  sim.Run();
  // 40B at 1Gbps = 320ns per hop + 1us delay: 2*(320ns + 1us) = 2.64us.
  EXPECT_EQ(delivered, Time::Nanos(2640));
}

TEST(PortTest, BackToBackPacketsPipelineAtLineRate) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  std::vector<Time> arrivals;
  net.host(1).RegisterFlowReceiver(1, [&](Packet&& p) { arrivals.push_back(sim.Now()); });

  for (int i = 0; i < 10; ++i) {
    net.host(0).Send(RawPacket(net, 0, 1));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Consecutive deliveries exactly one serialization time (12us) apart.
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], Time::Micros(12));
  }
}

TEST(PortTest, TransmitCountersAdvance) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  net.host(0).Send(RawPacket(net, 0, 1));
  net.host(0).Send(RawPacket(net, 0, 1));
  sim.Run();
  EXPECT_EQ(net.host(0).nic().packets_sent(), 2u);
  EXPECT_EQ(net.host(0).nic().bytes_sent(), 3000u);
}

TEST(PortTest, BoundedHostQueueDropsBurst) {
  NetworkConfig cfg;
  cfg.host_queue_packets = 5;
  Simulator sim;
  Network net(&sim, TwoHostTopology(), cfg);
  // 1 in flight + 5 queued = 6 accepted; the rest are NIC drops.
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    accepted += net.host(0).Send(RawPacket(net, 0, 1)) ? 1 : 0;
  }
  sim.Run();
  EXPECT_EQ(accepted, 6);
  EXPECT_EQ(net.host(0).nic_drops(), 14u);
  EXPECT_EQ(net.total_delivered(), 6u);
}

TEST(PortTest, StrayPacketsCounted) {
  Simulator sim;
  Network net(&sim, TwoHostTopology(), NetworkConfig{});
  net.host(0).Send(RawPacket(net, 0, 1));  // no receiver registered for flow 1
  sim.Run();
  EXPECT_EQ(net.host(1).stray_packets(), 1u);
  EXPECT_EQ(net.total_delivered(), 1u);
}

}  // namespace
}  // namespace dibs
