#include "src/hw/netfpga.h"

#include <gtest/gtest.h>

#include <set>

namespace dibs {
namespace netfpga {
namespace {

TEST(BitOpsTest, LowestSetBit) {
  EXPECT_EQ(LowestSetBit(0b0001), 0);
  EXPECT_EQ(LowestSetBit(0b1000), 3);
  EXPECT_EQ(LowestSetBit(0b1010), 1);
}

TEST(BitOpsTest, CountPorts) {
  EXPECT_EQ(CountPorts(0), 0);
  EXPECT_EQ(CountPorts(0b1011), 3);
  EXPECT_EQ(CountPorts(0xFFFFFFFF), 32);
}

TEST(BitOpsTest, NthSetBit) {
  EXPECT_EQ(NthSetBit(0b1011, 0), 0);
  EXPECT_EQ(NthSetBit(0b1011, 1), 1);
  EXPECT_EQ(NthSetBit(0b1011, 2), 3);
  EXPECT_EQ(NthSetBit(0b10000000, 0), 7);
}

TEST(OutputPortLookupTest, ForwardsWhenDesiredAvailable) {
  OutputPortLookup lookup(/*switch_facing=*/0b1111'0000, /*num_ports=*/8);
  const LookupResult r = lookup.Decide(/*fib=*/0b0000'0100, /*available=*/0xFF);
  EXPECT_FALSE(r.drop);
  EXPECT_FALSE(r.detoured);
  EXPECT_EQ(r.port, 2);
}

TEST(OutputPortLookupTest, EcmpEntryPicksAnAvailableDesiredPort) {
  OutputPortLookup lookup(0b1111'0000, 8);
  // FIB offers ports 4..7; only 6 is available.
  const LookupResult r = lookup.Decide(0b1111'0000, 0b0100'0000);
  EXPECT_FALSE(r.drop);
  EXPECT_FALSE(r.detoured);
  EXPECT_EQ(r.port, 6);
}

TEST(OutputPortLookupTest, DetoursWhenDesiredFull) {
  OutputPortLookup lookup(/*switch_facing=*/0b1111'0000, 8);
  // Desired port 2 unavailable; switch ports 4..7 available.
  const LookupResult r = lookup.Decide(0b0000'0100, 0b1111'0000);
  EXPECT_FALSE(r.drop);
  EXPECT_TRUE(r.detoured);
  EXPECT_GE(r.port, 4);
  EXPECT_LE(r.port, 7);
}

TEST(OutputPortLookupTest, NeverDetoursToHostPorts) {
  OutputPortLookup lookup(/*switch_facing=*/0b1100'0000, 8);
  for (int i = 0; i < 200; ++i) {
    const LookupResult r = lookup.Decide(0b0000'0001, 0b1111'1110);
    ASSERT_FALSE(r.drop);
    ASSERT_TRUE(r.detoured);
    EXPECT_GE(r.port, 6);  // only 6,7 are switch-facing
  }
}

TEST(OutputPortLookupTest, DropsWhenEverythingFull) {
  OutputPortLookup lookup(0b1111'0000, 8);
  const LookupResult r = lookup.Decide(0b0000'0100, 0);
  EXPECT_TRUE(r.drop);
}

TEST(OutputPortLookupTest, DropsWhenOnlyHostPortsAvailable) {
  OutputPortLookup lookup(/*switch_facing=*/0b1111'0000, 8);
  const LookupResult r = lookup.Decide(0b0001'0000, 0b0000'1111);
  EXPECT_TRUE(r.drop);
}

TEST(OutputPortLookupTest, DetourSpreadsAcrossCandidates) {
  OutputPortLookup lookup(0b1111'0000, 8);
  std::set<uint8_t> seen;
  for (int i = 0; i < 500; ++i) {
    const LookupResult r = lookup.Decide(0b0000'0001, 0b1111'0000);
    ASSERT_TRUE(r.detoured);
    seen.insert(r.port);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of ports 4..7 get used
}

TEST(OutputPortLookupTest, LfsrAdvancesOnlyOnDetours) {
  OutputPortLookup lookup(0b1111'0000, 8);
  const uint16_t before = lookup.lfsr_state();
  lookup.Decide(0b0000'0001, 0b0000'0001);  // plain forward
  EXPECT_EQ(lookup.lfsr_state(), before);
  lookup.Decide(0b0000'0001, 0b1111'0000);  // detour
  EXPECT_NE(lookup.lfsr_state(), before);
}

TEST(OutputPortLookupTest, LfsrIsMaximalLengthIsh) {
  // The 16-bit LFSR must not get stuck in a short cycle from our seed.
  OutputPortLookup lookup(0b1111'0000, 8, /*lfsr_seed=*/0xACE1);
  std::set<uint16_t> states;
  for (int i = 0; i < 10000; ++i) {
    lookup.Decide(0b0000'0001, 0b1111'0000);
    states.insert(lookup.lfsr_state());
  }
  EXPECT_GT(states.size(), 9000u);
}

TEST(OutputPortLookupTest, WithoutDibsDropsOnFullDesired) {
  OutputPortLookup lookup(0b1111'0000, 8);
  const LookupResult r = lookup.DecideWithoutDibs(0b0000'0100, 0b1111'0000);
  EXPECT_TRUE(r.drop);
  const LookupResult ok = lookup.DecideWithoutDibs(0b0000'0100, 0b0000'0100);
  EXPECT_FALSE(ok.drop);
  EXPECT_EQ(ok.port, 2);
}

// Behavioral equivalence with the simulator's DIBS semantics on randomized
// cases: forward iff a desired port has room; otherwise detour iff an
// available switch-facing non-desired port exists; otherwise drop.
TEST(OutputPortLookupTest, MatchesReferenceSemanticsOnRandomCases) {
  OutputPortLookup lookup(/*switch_facing=*/0b1111'1100, 8);
  uint32_t state = 12345;
  auto next = [&state] {
    state = state * 1664525 + 1013904223;
    return state;
  };
  for (int i = 0; i < 5000; ++i) {
    const PortBitmap fib = next() & 0xFF;
    const PortBitmap available = next() & 0xFF;
    if (fib == 0) {
      continue;
    }
    const LookupResult r = lookup.Decide(fib, available);
    const PortBitmap usable = fib & available;
    const PortBitmap detourable = available & 0b1111'1100 & ~fib;
    if (usable != 0) {
      EXPECT_FALSE(r.drop);
      EXPECT_FALSE(r.detoured);
      EXPECT_TRUE(usable & (1u << r.port));
    } else if (detourable != 0) {
      EXPECT_FALSE(r.drop);
      EXPECT_TRUE(r.detoured);
      EXPECT_TRUE(detourable & (1u << r.port));
    } else {
      EXPECT_TRUE(r.drop);
    }
  }
}

}  // namespace
}  // namespace netfpga
}  // namespace dibs
