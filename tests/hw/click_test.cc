#include "src/hw/click.h"

#include <gtest/gtest.h>

#include <set>

namespace dibs {
namespace click {
namespace {

Packet For(HostId dst) {
  Packet p;
  p.dst = dst;
  p.size_bytes = 1500;
  return p;
}

ClickRouter::Options FourPortRouter(bool dibs, size_t capacity = 3) {
  ClickRouter::Options opts;
  opts.num_ports = 4;
  opts.queue_capacity = capacity;
  // Hosts 0..3 map to ports 0..3; ports 2,3 are switch-facing.
  opts.switch_facing = {false, false, true, true};
  opts.dibs_enabled = dibs;
  opts.route = [](HostId dst) { return static_cast<int>(dst); };
  return opts;
}

TEST(QueueElementTest, FifoAndCapacity) {
  QueueElement q(2);
  q.Push(0, For(1));
  q.Push(0, For(2));
  EXPECT_TRUE(q.full());
  q.Push(0, For(3));  // dropped
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.Pull()->dst, 1);
  EXPECT_EQ(q.Pull()->dst, 2);
  EXPECT_FALSE(q.Pull().has_value());
}

TEST(ClickRouterTest, RoutesByDestination) {
  ClickRouter router(FourPortRouter(/*dibs=*/true));
  router.HandlePacket(For(2));
  router.HandlePacket(For(0));
  EXPECT_EQ(router.queue(2).size(), 1u);
  EXPECT_EQ(router.queue(0).size(), 1u);
  EXPECT_EQ(router.PullFrom(2)->dst, 2);
}

TEST(ClickRouterTest, DroptailBaselineDropsOnOverflow) {
  ClickRouter router(FourPortRouter(/*dibs=*/false, /*capacity=*/2));
  for (int i = 0; i < 10; ++i) {
    router.HandlePacket(For(0));
  }
  EXPECT_EQ(router.queue(0).size(), 2u);
  EXPECT_EQ(router.detour().drops(), 8u);
  EXPECT_EQ(router.detour().detours(), 0u);
}

TEST(ClickRouterTest, DibsDetoursToSwitchFacingQueues) {
  ClickRouter router(FourPortRouter(/*dibs=*/true, /*capacity=*/2));
  for (int i = 0; i < 6; ++i) {
    router.HandlePacket(For(0));
  }
  // 2 direct + 4 detoured into ports 2/3 (capacity 2 each).
  EXPECT_EQ(router.queue(0).size(), 2u);
  EXPECT_EQ(router.detour().detours(), 4u);
  EXPECT_EQ(router.detour().drops(), 0u);
  EXPECT_EQ(router.queue(2).size() + router.queue(3).size(), 4u);
  // Host-facing port 1 must stay empty.
  EXPECT_EQ(router.queue(1).size(), 0u);
}

TEST(ClickRouterTest, DibsDropsWhenAllEligibleFull) {
  ClickRouter router(FourPortRouter(/*dibs=*/true, /*capacity=*/1));
  // Fill port 0 (1), then detours fill 2 and 3 (1 each); next packet drops.
  for (int i = 0; i < 4; ++i) {
    router.HandlePacket(For(0));
  }
  EXPECT_EQ(router.detour().detours(), 2u);
  EXPECT_EQ(router.detour().drops(), 1u);
}

TEST(ClickRouterTest, DetouredPacketsCountTheirDetours) {
  ClickRouter router(FourPortRouter(/*dibs=*/true, /*capacity=*/1));
  router.HandlePacket(For(0));
  router.HandlePacket(For(0));  // detoured
  Packet detoured = [&] {
    auto p = router.PullFrom(2);
    if (!p.has_value()) {
      p = router.PullFrom(3);
    }
    return *p;
  }();
  EXPECT_EQ(detoured.detour_count, 1u);
}

TEST(ClickRouterTest, DetourPicksSpreadOverEligiblePorts) {
  std::set<size_t> nonzero;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ClickRouter::Options opts = FourPortRouter(/*dibs=*/true, /*capacity=*/1);
    opts.seed = seed;
    ClickRouter router(opts);
    router.HandlePacket(For(0));
    router.HandlePacket(For(0));  // one detour
    if (router.queue(2).size() == 1) {
      nonzero.insert(2);
    }
    if (router.queue(3).size() == 1) {
      nonzero.insert(3);
    }
  }
  EXPECT_EQ(nonzero.size(), 2u);  // both eligible ports chosen across seeds
}

TEST(ClickRouterTest, PassThroughWhenQueueHasRoom) {
  ClickRouter router(FourPortRouter(/*dibs=*/true, /*capacity=*/100));
  for (int i = 0; i < 50; ++i) {
    router.HandlePacket(For(1));
  }
  EXPECT_EQ(router.queue(1).size(), 50u);
  EXPECT_EQ(router.detour().detours(), 0u);
}

TEST(ElementTest, UnwiredOutputIsFatal) {
  LookupElement lookup(2, [](HostId dst) { return static_cast<int>(dst); });
  EXPECT_DEATH(lookup.Push(0, For(1)), "unwired");
}

}  // namespace
}  // namespace click
}  // namespace dibs
