#!/usr/bin/env bash
# CI entry point. Stages, in order:
#
#   1. determinism lint   — tools/determinism_lint.py, the fast textual
#                           pre-pass banning rand()/random_device/wall-clock
#                           on the simulation path.
#   2. format check       — clang-format --dry-run over the tree (skipped
#                           when clang-format is not installed).
#   3. tier-1             — default build + full ctest suite.
#   4. clang-tidy         — `tidy` target over src/ using the tier-1 build's
#                           compile_commands.json (skips itself when
#                           clang-tidy is not installed).
#   5. analyze            — dibs-analyzer (tools/analyzer/): libclang
#                           semantic lint over src/ (determinism-ast,
#                           pointer-key-order, observer-purity,
#                           signal-safety, checkpoint-coverage) against the
#                           tier-1 build's compile_commands.json. Fails on
#                           any finding not in tools/analyzer/baseline.json;
#                           prints a skip message where the python libclang
#                           bindings are not installed.
#   6. asan+ubsan         — full ctest suite under ASan+UBSan with
#                           DIBS_VALIDATE=1, so every scenario test also
#                           runs the invariant checker and its conservation
#                           ledger must balance.
#   7. fuzz               — deterministic chaos harness (tools/dibs_fuzz):
#                           the spec stream for the fixed seed must be
#                           bit-reproducible, a 100-case fixed-seed fuzz run
#                           (invariant + metamorphic oracles) must come back
#                           clean under ASan+UBSan, and the planted-bug
#                           repro (DIBS_CHAOS_PLANT=1) must replay red with
#                           the bug in and green without — proof the oracle
#                           actually bites. Corpus replay itself rides in
#                           tier-1 ctest (chaos_corpus_replay).
#   8. fig11 smoke        — the incast-degree figure bench end-to-end with
#                           DIBS_VALIDATE=1 and DIBS_REQUIRE_OK=1 (any run
#                           a validation throw fails is fatal), on the
#                           tier-1 build tree.
#   9. trace smoke        — fig11 again with DIBS_TRACE=1: tables must be
#                           byte-identical to the untraced stage-7 run, every
#                           per-run trace JSONL must pass `trace_tool
#                           summarize`, the Perfetto export must be valid
#                           JSON, and the same traced bench must run clean
#                           under ASan+UBSan. Also kills one child run via
#                           DIBS_TEST_CRASH_RUN (process isolation) and
#                           requires the flight-recorder crash dump it leaves
#                           behind to be parseable. Finally the tracing-off
#                           overhead guard: BM_SwitchPacketHop must stay
#                           within 2% of the per-machine ratcheted baseline
#                           cached in the build tree
#                           (tools/check_trace_overhead.py).
#  10. resilience smoke   — the fault-injection bench under ASan+UBSan with
#                           DIBS_VALIDATE=1 (the conservation ledger must
#                           balance through link flaps, lossy links, and a
#                           ToR crash), run twice — DIBS_JOBS=1 then
#                           DIBS_JOBS=8 — and diffed: tables byte-identical,
#                           JSONL identical modulo host-side wall-clock
#                           metadata (wall_ms / events_per_sec).
#  11. crash-resume      — kills (SIGKILL) the resilience bench mid-sweep,
#                           resumes it from its run journal (DIBS_RESUME=1),
#                           and byte-diffs the resumed tables/JSONL against
#                           an uninterrupted run at DIBS_JOBS=1 and 8 — the
#                           acceptance bar for journal-backed resume. The
#                           crash/hang injection hooks behind the same
#                           machinery (DIBS_TEST_CRASH_RUN, DIBS_ISOLATE)
#                           are exercised by tests/exp under stage 6's
#                           ASan+UBSan config.
#  12. checkpoint        — in-run checkpoint/restore (src/ckpt) under
#                           ASan+UBSan: the resilience bench with periodic
#                           quiescent-barrier snapshots armed, one child
#                           SIGKILLed right after its first durable barrier
#                           (DIBS_TEST_CKPT_KILL_RUN) and resumed by the
#                           retry from the snapshot — tables and (wall- and
#                           attempt-normalized) JSONL must byte-match an
#                           uninterrupted run at DIBS_JOBS=1 and 8, and every
#                           finished run must retire its snapshot. Then the
#                           fallback leg: a run killed with no retries leaves
#                           its checkpoint behind, the file is truncated, and
#                           the next sweep must reject it (typed CkptError)
#                           and replay from scratch to the same bytes.
#  13. guard             — overload-protection smoke: the guarded fig14
#                           extreme-qps sweep under ASan+UBSan with
#                           DIBS_VALIDATE=1 (guard drops must keep the
#                           conservation ledger balanced, and the breaker
#                           must actually trip), then the guard_collapse
#                           negative test on the plain build: the
#                           CollapseWatchdog must flag unguarded DIBS at
#                           the collapse point and must not flag the
#                           guarded run (DIBS_GUARD_EXPECT=1 makes the
#                           bench exit nonzero otherwise).
#  14. tsan              — sweep engine under ThreadSanitizer (tests/exp)
#                           so data races in the threaded layer fail the
#                           pipeline.
#
# Build trees are shared across stages (build/, build-asan/, build-tsan/ are
# incremental across CI runs) to keep wall-clock bounded.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== lint: determinism rules =="
python3 tools/determinism_lint.py

echo "== format: clang-format check =="
if command -v clang-format >/dev/null 2>&1; then
  find src tests bench examples tools -name '*.h' -o -name '*.cc' -o -name '*.cpp' \
    | xargs clang-format --dry-run --Werror
else
  echo "clang-format not found, skipping"
fi

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== tidy: clang-tidy over src/ =="
cmake --build build --target tidy

echo "== analyze: dibs-analyzer semantic lint over src/ =="
# Fails on any finding not grandfathered in tools/analyzer/baseline.json;
# self-degrades with a skip message where libclang is unavailable.
python3 tools/analyzer/dibs_analyzer.py \
  --compile-commands build/compile_commands.json

echo "== asan+ubsan: full test suite with DIBS_VALIDATE=1 =="
cmake -B build-asan -S . -DDIBS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$JOBS"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_VALIDATE=1 ctest --test-dir build-asan --output-on-failure -j"$JOBS"

# Scratch space shared by the smoke stages below.
CI_TMP="$(mktemp -d)"
trap 'rm -rf "$CI_TMP"' EXIT

echo "== fuzz: deterministic chaos harness =="
FUZZ_TMP="$CI_TMP/fuzz"
mkdir -p "$FUZZ_TMP"
cmake --build build -j"$JOBS" --target dibs_fuzz
cmake --build build-asan -j"$JOBS" --target dibs_fuzz
# The spec stream is a pure function of the seed: two generations must be
# byte-identical (and the plain and sanitized builds must agree — a
# divergence means undefined behavior leaked into the generator).
./build/tools/dibs_fuzz gen --seed 20140401 --cases 200 > "$FUZZ_TMP/stream_a.jsonl"
./build/tools/dibs_fuzz gen --seed 20140401 --cases 200 > "$FUZZ_TMP/stream_b.jsonl"
./build-asan/tools/dibs_fuzz gen --seed 20140401 --cases 200 > "$FUZZ_TMP/stream_asan.jsonl"
diff -u "$FUZZ_TMP/stream_a.jsonl" "$FUZZ_TMP/stream_b.jsonl"
diff -u "$FUZZ_TMP/stream_a.jsonl" "$FUZZ_TMP/stream_asan.jsonl"
echo "fuzz: spec stream bit-reproducible"
# Fixed-seed 100-case smoke under ASan+UBSan: every case runs the invariant
# ledger plus the metamorphic oracles and must come back clean.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_FUZZ_SEED=20140401 DIBS_FUZZ_BUDGET=20000000 \
  ./build-asan/tools/dibs_fuzz run --cases 100
# Planted-bug round trip on the plain build: the committed corpus entry must
# replay red with the known-bad ledger hook enabled and green without it —
# if the red leg passes, the validate oracle has stopped biting.
if DIBS_CHAOS_PLANT=1 ./build/tools/dibs_fuzz replay \
    tests/chaos/corpus/seed7-case0-validate.json > /dev/null 2>&1; then
  echo "fuzz: planted bug was NOT detected — oracle is blind"; exit 1
fi
./build/tools/dibs_fuzz replay tests/chaos/corpus
echo "fuzz: planted-bug repro replays red with the bug, green without"

echo "== smoke: fig11 incast-degree bench with DIBS_VALIDATE=1 =="
DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 \
  ./build/bench/fig11_incast_degree | tee "$CI_TMP/fig11_plain.txt"

echo "== trace: fig11 with tracing on — identical tables, parseable traces =="
TR_TMP="$CI_TMP/trace"
mkdir -p "$TR_TMP"
cmake --build build -j"$JOBS" --target trace_tool
# Tracing must be an observer, never a participant: the traced run's tables
# must be byte-identical to the untraced stage-6 run.
DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 \
  DIBS_TRACE=1 DIBS_TRACE_JSONL="$TR_TMP/fig11.jsonl" \
  ./build/bench/fig11_incast_degree > "$TR_TMP/fig11_traced.txt"
diff -u "$CI_TMP/fig11_plain.txt" "$TR_TMP/fig11_traced.txt"
echo "trace: tables byte-identical with tracing on"
# Every per-run trace must decode and summarize (summarize exits nonzero on
# an empty or unopenable trace), and the Perfetto export must be valid JSON.
for f in "$TR_TMP"/fig11.run*.jsonl; do
  ./build/tools/trace_tool summarize "$f" > /dev/null
done
./build/tools/trace_tool to-perfetto "$TR_TMP/fig11.run0.jsonl" \
  "$TR_TMP/fig11.run0.perfetto.json" > /dev/null
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
  "$TR_TMP/fig11.run0.perfetto.json"
echo "trace: $(ls "$TR_TMP"/fig11.run*.jsonl | wc -l) per-run traces summarize cleanly"

echo "== trace: same traced bench under ASan+UBSan =="
cmake --build build-asan -j"$JOBS" --target fig11_incast_degree
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 \
  DIBS_TRACE=1 DIBS_TRACE_JSONL="$TR_TMP/fig11_asan.jsonl" \
  DIBS_TRACE_PERFETTO="$TR_TMP/fig11_asan.perfetto.json" \
  ./build-asan/bench/fig11_incast_degree > /dev/null
./build/tools/trace_tool summarize "$TR_TMP/fig11_asan.run0.jsonl" > /dev/null

echo "== trace: forced child crash leaves a parseable flight-recorder dump =="
# Run 2 of the sweep segfaults inside an isolated child process; the crash
# handler must dump the flight-recorder ring before the process dies, and the
# dump must be analyzable after the fact. No DIBS_REQUIRE_OK: the crashed row
# is expected and the sweep itself finishes.
rm -f "$TR_TMP"/crash_dump*.jsonl
DIBS_BENCH_DURATION_MS=50 DIBS_ISOLATE=process DIBS_TEST_CRASH_RUN=2 \
  DIBS_TRACE=1 DIBS_TRACE_DUMP_PATH="$TR_TMP/crash_dump.jsonl" \
  ./build/bench/fig11_incast_degree > /dev/null
./build/tools/trace_tool summarize "$TR_TMP/crash_dump.run2.jsonl"
echo "trace: crash dump parseable"

echo "== trace: tracing-off overhead guard on micro_simcore =="
# BM_SwitchPacketHop runs with no trace bus attached; the trace variants ride
# along as smoke. The guard ratchets against a per-machine baseline cached in
# the (incremental, per-machine) build tree — wall-clock baselines do not
# transfer between machines.
./build/bench/micro_simcore --benchmark_filter='^BM_SwitchPacketHop' \
  --benchmark_repetitions=5 --benchmark_format=json \
  > "$TR_TMP/switch_hop.json"
python3 tools/check_trace_overhead.py "$TR_TMP/switch_hop.json" \
  build/trace_overhead_baseline.json 2.0

echo "== smoke: resilience fault-injection bench, seed-determinism across DIBS_JOBS =="
# ASan+UBSan build (stage 5 already built it) with the invariant checker on:
# every fault cell must keep the conservation ledger balanced, and the whole
# sweep must be reproducible regardless of worker count.
cmake --build build-asan -j"$JOBS" --target resilience
RES_TMP="$CI_TMP/resilience"
mkdir -p "$RES_TMP"
for jobs in 1 8; do
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_SWEEP_JSONL="$RES_TMP/res_j$jobs.jsonl" \
    ./build-asan/bench/resilience > "$RES_TMP/res_j$jobs.txt"
  # Host-side wall-clock metadata legitimately differs between runs; the
  # simulation payload may not.
  sed -E 's/"wall_ms":[0-9.eE+-]+,"events_per_sec":[0-9.eE+-]+/"wall_ms":0,"events_per_sec":0/' \
    "$RES_TMP/res_j$jobs.jsonl" > "$RES_TMP/res_j$jobs.norm"
done
diff -u "$RES_TMP/res_j1.txt" "$RES_TMP/res_j8.txt"
diff -u "$RES_TMP/res_j1.norm" "$RES_TMP/res_j8.norm"
echo "resilience: byte-identical across DIBS_JOBS=1/8"

echo "== crash-resume: kill -9 mid-sweep, resume from journal, byte-diff =="
# Plain (fast) build of the same bench. For each worker count: run once
# uninterrupted as the baseline, then start a journaled run, SIGKILL it once
# a few rows hit the journal, resume with DIBS_RESUME=1 into fresh sink
# files, and require tables and (normalized) JSONL byte-identical to the
# baseline. DIBS_STRICT=1 on the resumed leg also proves the strict gate
# passes a fully-recovered sweep.
cmake --build build -j"$JOBS" --target resilience
CR_TMP="$RES_TMP/crash_resume"
mkdir -p "$CR_TMP"
normalize_wall() {
  sed -E 's/"wall_ms":[0-9.eE+-]+,"events_per_sec":[0-9.eE+-]+/"wall_ms":0,"events_per_sec":0/' \
    "$1" > "$2"
}
# CSV columns 9/10 are wall_ms and events_per_sec (no quoted commas precede
# them on ok rows).
normalize_csv_wall() {
  awk -F, 'BEGIN{OFS=","} {if (NF > 10) {$9="0"; $10="0"} print}' "$1" > "$2"
}
for jobs in 1 8; do
  rm -f "$CR_TMP"/*
  DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_SWEEP_JSONL="$CR_TMP/base.jsonl" \
    DIBS_SWEEP_CSV="$CR_TMP/base.csv" \
    ./build/bench/resilience > "$CR_TMP/base.txt"

  DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_JOURNAL="$CR_TMP/sweep.journal" \
    DIBS_SWEEP_JSONL="$CR_TMP/killed.jsonl" \
    ./build/bench/resilience > /dev/null 2>&1 &
  victim=$!
  # Wait for the journal to hold the header plus >= 2 run records, then
  # SIGKILL. If the sweep finishes first the resume leg degrades to a
  # full-replay check, which must produce identical output too.
  for _ in $(seq 1 400); do
    lines=0
    if [ -f "$CR_TMP/sweep.journal" ]; then
      lines=$(wc -l < "$CR_TMP/sweep.journal")
    fi
    if [ "$lines" -ge 3 ]; then
      break
    fi
    if ! kill -0 "$victim" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  kill -9 "$victim" 2>/dev/null || true
  wait "$victim" 2>/dev/null || true

  DIBS_RESUME=1 DIBS_STRICT=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_JOURNAL="$CR_TMP/sweep.journal" \
    DIBS_SWEEP_JSONL="$CR_TMP/resumed.jsonl" \
    DIBS_SWEEP_CSV="$CR_TMP/resumed.csv" \
    ./build/bench/resilience > "$CR_TMP/resumed.txt"

  normalize_wall "$CR_TMP/base.jsonl" "$CR_TMP/base.norm"
  normalize_wall "$CR_TMP/resumed.jsonl" "$CR_TMP/resumed.norm"
  normalize_csv_wall "$CR_TMP/base.csv" "$CR_TMP/base.csvnorm"
  normalize_csv_wall "$CR_TMP/resumed.csv" "$CR_TMP/resumed.csvnorm"
  diff -u "$CR_TMP/base.txt" "$CR_TMP/resumed.txt"
  diff -u "$CR_TMP/base.norm" "$CR_TMP/resumed.norm"
  diff -u "$CR_TMP/base.csvnorm" "$CR_TMP/resumed.csvnorm"
  echo "crash-resume: byte-identical after SIGKILL + resume at DIBS_JOBS=$jobs"
done

echo "== checkpoint: SIGKILL at a barrier, restore, byte-diff; damaged-ckpt fallback =="
# The resilience bench again (build-asan already has it), now with periodic
# checkpoint snapshots armed. Normalization covers the two host-side wall
# fields plus `attempts`, which is legitimately 2 on the killed-and-resumed
# row.
CK_TMP="$CI_TMP/ckpt"
normalize_ckpt() {
  sed -E -e 's/"wall_ms":[0-9.eE+-]+,"events_per_sec":[0-9.eE+-]+/"wall_ms":0,"events_per_sec":0/' \
         -e 's/"attempts":[0-9]+/"attempts":1/' "$1" > "$2"
}
for jobs in 1 8; do
  rm -rf "$CK_TMP"
  mkdir -p "$CK_TMP"
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_SWEEP_JSONL="$CK_TMP/base.jsonl" \
    ./build-asan/bench/resilience > "$CK_TMP/base.txt"
  # Each sweep's run 0 dies by SIGKILL right after its first durable barrier
  # (the kill is raised from the barrier hook, with the snapshot already on
  # disk); the retry restores the snapshot and finishes the run.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_ISOLATE=process DIBS_MAX_ATTEMPTS=2 \
    DIBS_CKPT_DIR="$CK_TMP" DIBS_CKPT_INTERVAL_MS=10 DIBS_TEST_CKPT_KILL_RUN=0 \
    DIBS_SWEEP_JSONL="$CK_TMP/resumed.jsonl" \
    ./build-asan/bench/resilience > "$CK_TMP/resumed.txt"
  normalize_ckpt "$CK_TMP/base.jsonl" "$CK_TMP/base.norm"
  normalize_ckpt "$CK_TMP/resumed.jsonl" "$CK_TMP/resumed.norm"
  diff -u "$CK_TMP/base.txt" "$CK_TMP/resumed.txt"
  diff -u "$CK_TMP/base.norm" "$CK_TMP/resumed.norm"
  if ls "$CK_TMP"/*.ckpt >/dev/null 2>&1; then
    echo "checkpoint: finished runs left snapshots behind"; exit 1
  fi
  echo "checkpoint: byte-identical after SIGKILL + checkpoint resume at DIBS_JOBS=$jobs"
done
# Fallback leg: kill with NO retries so the snapshots survive the sweep,
# truncate them mid-state-line, and rerun. Every damaged file must be
# rejected with a typed CkptError and replayed from scratch — same bytes as
# the baseline, on the first attempt. (No DIBS_REQUIRE_OK on the kill leg:
# the crashed rows are the point.)
DIBS_BENCH_DURATION_MS=50 DIBS_JOBS=1 \
  DIBS_ISOLATE=process DIBS_MAX_ATTEMPTS=1 \
  DIBS_CKPT_DIR="$CK_TMP" DIBS_CKPT_INTERVAL_MS=10 DIBS_TEST_CKPT_KILL_RUN=0 \
  ./build-asan/bench/resilience > /dev/null
ls "$CK_TMP"/*.ckpt >/dev/null  # the killed runs must have left snapshots
for f in "$CK_TMP"/*.ckpt; do
  size=$(wc -c < "$f")
  head -c "$((size / 2))" "$f" > "$f.tmp" && mv "$f.tmp" "$f"
done
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS=1 \
  DIBS_CKPT_DIR="$CK_TMP" DIBS_CKPT_INTERVAL_MS=10 \
  DIBS_SWEEP_JSONL="$CK_TMP/fallback.jsonl" \
  ./build-asan/bench/resilience > "$CK_TMP/fallback.txt"
normalize_ckpt "$CK_TMP/fallback.jsonl" "$CK_TMP/fallback.norm"
diff -u "$CK_TMP/base.txt" "$CK_TMP/fallback.txt"
diff -u "$CK_TMP/base.norm" "$CK_TMP/fallback.norm"
echo "checkpoint: truncated snapshot rejected, from-scratch replay byte-identical"

echo "== guard: ASan+UBSan guarded fig14 smoke with DIBS_VALIDATE=1 =="
# The guarded scheme runs the whole extreme-qps sweep under sanitizers with
# the invariant checker on: breaker suppressions and TTL clamps must keep
# the conservation ledger balanced (every guard drop is attributed).
cmake --build build-asan -j"$JOBS" --target fig14_extreme_qps
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=20 \
  ./build-asan/bench/fig14_extreme_qps | tee "$CI_TMP/fig14_guard.txt"
# The guarded column must show real breaker activity even in the short
# smoke window (trips is the second-to-last table column; skip banner and
# blank lines, where NF-1 would be an invalid field index).
awk 'NR > 6 && NF > 2 && $(NF-1) + 0 > 0 { active = 1 } END { exit active ? 0 : 1 }' \
  "$CI_TMP/fig14_guard.txt" \
  || { echo "guard: no breaker trips in the fig14 smoke"; exit 1; }

echo "== guard: negative test — watchdog trips unguarded DIBS, not guarded =="
# Plain (fast) build at the collapse point: the bench itself exits nonzero
# unless the unguarded run is flagged by the CollapseWatchdog AND the
# guarded run is not (with at least one breaker trip). A watchdog that
# never fires, or a guard that stopped preventing the collapse it exists
# for, both fail here.
cmake --build build -j"$JOBS" --target guard_collapse
DIBS_GUARD_EXPECT=1 ./build/bench/guard_collapse

echo "== tsan: sweep engine under ThreadSanitizer =="
cmake -B build-tsan -S . -DDIBS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target exp_test
# Multiple worker threads even on small CI machines, so claim/flush paths
# actually interleave under TSan.
TSAN_OPTIONS="halt_on_error=1" DIBS_JOBS=4 ./build-tsan/tests/exp_test

echo "== ci.sh: all green =="
