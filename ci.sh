#!/usr/bin/env bash
# CI entry point. Stages, in order:
#
#   1. determinism lint   — tools/determinism_lint.py bans rand()/
#                           random_device/wall-clock/unordered-iteration on
#                           the simulation path.
#   2. format check       — clang-format --dry-run over the tree (skipped
#                           when clang-format is not installed).
#   3. tier-1             — default build + full ctest suite.
#   4. clang-tidy         — `tidy` target over src/ using the tier-1 build's
#                           compile_commands.json (skips itself when
#                           clang-tidy is not installed).
#   5. asan+ubsan         — full ctest suite under ASan+UBSan with
#                           DIBS_VALIDATE=1, so every scenario test also
#                           runs the invariant checker and its conservation
#                           ledger must balance.
#   6. fig11 smoke        — the incast-degree figure bench end-to-end with
#                           DIBS_VALIDATE=1 and DIBS_REQUIRE_OK=1 (any run
#                           a validation throw fails is fatal), on the
#                           tier-1 build tree.
#   7. resilience smoke   — the fault-injection bench under ASan+UBSan with
#                           DIBS_VALIDATE=1 (the conservation ledger must
#                           balance through link flaps, lossy links, and a
#                           ToR crash), run twice — DIBS_JOBS=1 then
#                           DIBS_JOBS=8 — and diffed: tables byte-identical,
#                           JSONL identical modulo host-side wall-clock
#                           metadata (wall_ms / events_per_sec).
#   8. tsan               — sweep engine under ThreadSanitizer (tests/exp)
#                           so data races in the threaded layer fail the
#                           pipeline.
#
# Build trees are shared across stages (build/, build-asan/, build-tsan/ are
# incremental across CI runs) to keep wall-clock bounded.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== lint: determinism rules =="
python3 tools/determinism_lint.py

echo "== format: clang-format check =="
if command -v clang-format >/dev/null 2>&1; then
  find src tests bench examples -name '*.h' -o -name '*.cc' -o -name '*.cpp' \
    | xargs clang-format --dry-run --Werror
else
  echo "clang-format not found, skipping"
fi

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== tidy: clang-tidy over src/ =="
cmake --build build --target tidy

echo "== asan+ubsan: full test suite with DIBS_VALIDATE=1 =="
cmake -B build-asan -S . -DDIBS_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$JOBS"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  DIBS_VALIDATE=1 ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== smoke: fig11 incast-degree bench with DIBS_VALIDATE=1 =="
DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 ./build/bench/fig11_incast_degree

echo "== smoke: resilience fault-injection bench, seed-determinism across DIBS_JOBS =="
# ASan+UBSan build (stage 5 already built it) with the invariant checker on:
# every fault cell must keep the conservation ledger balanced, and the whole
# sweep must be reproducible regardless of worker count.
cmake --build build-asan -j"$JOBS" --target resilience
RES_TMP="$(mktemp -d)"
trap 'rm -rf "$RES_TMP"' EXIT
for jobs in 1 8; do
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    DIBS_VALIDATE=1 DIBS_REQUIRE_OK=1 DIBS_BENCH_DURATION_MS=50 DIBS_JOBS="$jobs" \
    DIBS_SWEEP_JSONL="$RES_TMP/res_j$jobs.jsonl" \
    ./build-asan/bench/resilience > "$RES_TMP/res_j$jobs.txt"
  # Host-side wall-clock metadata legitimately differs between runs; the
  # simulation payload may not.
  sed -E 's/"wall_ms":[0-9.eE+-]+,"events_per_sec":[0-9.eE+-]+/"wall_ms":0,"events_per_sec":0/' \
    "$RES_TMP/res_j$jobs.jsonl" > "$RES_TMP/res_j$jobs.norm"
done
diff -u "$RES_TMP/res_j1.txt" "$RES_TMP/res_j8.txt"
diff -u "$RES_TMP/res_j1.norm" "$RES_TMP/res_j8.norm"
echo "resilience: byte-identical across DIBS_JOBS=1/8"

echo "== tsan: sweep engine under ThreadSanitizer =="
cmake -B build-tsan -S . -DDIBS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target exp_test
# Multiple worker threads even on small CI machines, so claim/flush paths
# actually interleave under TSan.
TSAN_OPTIONS="halt_on_error=1" DIBS_JOBS=4 ./build-tsan/tests/exp_test

echo "== ci.sh: all green =="
