#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then a ThreadSanitizer build that
# exercises the sweep engine's worker pool (tests/exp) so data races in the
# threaded layer fail the pipeline. Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== tsan: sweep engine under ThreadSanitizer =="
cmake -B build-tsan -S . -DDIBS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target exp_test
# Multiple worker threads even on small CI machines, so claim/flush paths
# actually interleave under TSan.
TSAN_OPTIONS="halt_on_error=1" DIBS_JOBS=4 ./build-tsan/tests/exp_test

echo "== ci.sh: all green =="
