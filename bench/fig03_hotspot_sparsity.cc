// Figure 3: sparsity of hotspots across workload types.
//
// The paper reproduces this graph from the Flyways paper's four production
// datasets (IndexSrv, 3Cars, Neon, Cosmos), which are not public. We
// substitute synthetic demand matrices with the same structural character —
// partition/aggregate (IndexSrv-like), map-reduce shuffle (Cosmos-like), and
// HPC neighbor exchange (Neon/3Cars-like) — and measure the same quantity:
// the CDF over time of the fraction of links whose utilization is at least
// half that of the most-loaded link.

#include <iostream>

#include "bench/bench_util.h"
#include "src/stats/link_monitor.h"
#include "src/workload/background.h"
#include "src/workload/query.h"

using namespace dibs;
using namespace dibs::bench;

namespace {

struct WorkloadResult {
  std::string name;
  std::vector<double> rel_hot_fractions;
};

WorkloadResult RunWorkload(const std::string& name, int mode) {
  ExperimentConfig cfg = DibsConfig();
  cfg.enable_background = false;
  cfg.enable_query = false;
  cfg.duration = BenchDuration(Time::Millis(300));
  cfg.drain = Time::Millis(100);
  cfg.seed = 11;

  Scenario scenario(cfg);
  Network& net = scenario.network();
  FlowManager& flows = scenario.flows();

  LinkMonitor::Options mon;
  mon.interval = Time::Millis(2);
  mon.stop_time = cfg.duration + cfg.drain;
  LinkMonitor monitor(&net, mon);
  monitor.Start();

  Rng& rng = net.sim().rng();
  const int n = net.num_hosts();

  switch (mode) {
    case 0: {  // partition/aggregate: incast bursts to rotating aggregators
      for (int q = 0; q < 60; ++q) {
        const Time at = Time::Millis(rng.UniformInt(0, cfg.duration.ToMillis() - 1));
        net.sim().ScheduleAt(at, [&net, &flows, &rng, n] {
          const auto picks = rng.SampleWithoutReplacement(n, 21);
          for (int i = 1; i <= 20; ++i) {
            flows.StartFlow(static_cast<HostId>(picks[static_cast<size_t>(i)]),
                            static_cast<HostId>(picks[0]), 20000, TrafficClass::kQuery,
                            nullptr);
          }
        });
      }
      break;
    }
    case 1: {  // map-reduce shuffle: a few racks exchange large blocks
      for (int wave = 0; wave < 6; ++wave) {
        const Time at = Time::Millis(wave * (cfg.duration.ToMillis() / 6));
        net.sim().ScheduleAt(at, [&net, &flows, &rng, n] {
          const auto members = rng.SampleWithoutReplacement(n, 16);
          for (int a : members) {
            for (int b : members) {
              if (a != b && rng.Bernoulli(0.3)) {
                flows.StartFlow(static_cast<HostId>(a), static_cast<HostId>(b), 500000,
                                TrafficClass::kBackground, nullptr);
              }
            }
          }
        });
      }
      break;
    }
    case 2: {  // HPC neighbor exchange: fixed ring of peers, periodic bursts
      for (int wave = 0; wave < 12; ++wave) {
        const Time at = Time::Millis(wave * (cfg.duration.ToMillis() / 12));
        net.sim().ScheduleAt(at, [&flows, n] {
          for (int h = 0; h < n; h += 4) {
            flows.StartFlow(static_cast<HostId>(h), static_cast<HostId>((h + 4) % n), 100000,
                            TrafficClass::kBackground, nullptr);
          }
        });
      }
      break;
    }
    default: {  // mixed: light all-to-all background
      for (int f = 0; f < 300; ++f) {
        const Time at = Time::Millis(rng.UniformInt(0, cfg.duration.ToMillis() - 1));
        net.sim().ScheduleAt(at, [&flows, &rng, n] {
          const auto src = static_cast<HostId>(rng.UniformInt(0, n - 1));
          auto dst = static_cast<HostId>(rng.UniformInt(0, n - 2));
          if (dst >= src) {
            ++dst;
          }
          flows.StartFlow(src, dst, 50000, TrafficClass::kBackground, nullptr);
        });
      }
      break;
    }
  }

  scenario.Run();
  return WorkloadResult{name, monitor.relative_hot_fractions()};
}

}  // namespace

int main() {
  PrintFigureBanner("Figure 3", "Sparsity of hotspots in four workload types",
                    "SUBSTITUTION: synthetic demand matrices stand in for the "
                    "(non-public) Flyways datasets; same metric (links >= 50% of max)");
  std::vector<WorkloadResult> results;
  results.push_back(RunWorkload("IndexSrv-like (partition/aggregate)", 0));
  results.push_back(RunWorkload("Cosmos-like (map-reduce shuffle)", 1));
  results.push_back(RunWorkload("Neon-like (HPC neighbor exchange)", 2));
  results.push_back(RunWorkload("3Cars-like (mixed all-to-all)", 3));

  TablePrinter table({"workload", "p50_hot_frac", "p90_hot_frac", "max_hot_frac",
                      "frac_time_below_10pct"});
  table.PrintHeader();
  for (const WorkloadResult& r : results) {
    std::vector<double> v = r.rel_hot_fractions;
    double below10 = 0;
    for (double f : v) {
      below10 += f < 0.10 ? 1 : 0;
    }
    below10 /= v.empty() ? 1 : static_cast<double>(v.size());
    table.PrintRow({r.name, TablePrinter::Num(Percentile(v, 50), 3),
                    TablePrinter::Num(Percentile(v, 90), 3),
                    TablePrinter::Num(Percentile(v, 100), 3), TablePrinter::Num(below10, 2)});
  }
  std::cout << "\n(paper: in every dataset, >=60% of the time fewer than 10% of links are hot)\n";
  return 0;
}
