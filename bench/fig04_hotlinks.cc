// Figure 4: fraction of links >= 90% utilized, as a CDF over time, for the
// baseline (300 qps), heavy (2000 qps), and extreme (10000 qps) workloads.
// Paper result: at any instant only a handful of links are hot, even under
// the heavy workload; only the extreme load changes the picture.

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 4", "Hot links (>= 90% utilization) over time",
                    "DCTCP+DIBS, degree 40, response 20KB, bg 120ms");
  struct Point {
    const char* name;
    double qps;
    Time duration;
  };
  const Point points[] = {
      {"baseline (300 qps)", 300, BenchDuration(Time::Millis(300))},
      {"heavy (2000 qps)", 2000, BenchDuration(Time::Millis(150))},
      {"extreme (10000 qps)", 10000, BenchDuration(Time::Millis(60))},
  };

  TablePrinter table({"workload", "p50_hot", "p90_hot", "p99_hot", "max_hot"});
  table.PrintHeader();
  std::vector<std::pair<std::string, std::vector<double>>> cdfs;
  for (const Point& p : points) {
    ExperimentConfig cfg = Standard(DibsConfig(), p.duration);
    cfg.qps = p.qps;
    cfg.monitor_links = true;
    cfg.link_interval = Time::Millis(1);
    const ScenarioResult r = RunScenario(cfg);
    std::vector<double> hot = r.hot_fractions;
    table.PrintRow({p.name, TablePrinter::Num(Percentile(hot, 50), 3),
                    TablePrinter::Num(Percentile(hot, 90), 3),
                    TablePrinter::Num(Percentile(hot, 99), 3),
                    TablePrinter::Num(Percentile(hot, 100), 3)});
    cdfs.emplace_back(p.name, std::move(hot));
  }

  std::cout << "\n-- CDF series (fraction of links hot vs fraction of time) --\n";
  for (auto& [name, values] : cdfs) {
    PrintCdf(name, EmpiricalCdfPoints(std::move(values), 20), "hot_link_frac");
  }
  std::cout << "\n(paper: baseline/heavy stay below ~10% hot links nearly all the time)\n";
  return 0;
}
