// Figure 12: very small buffers (1-200 packets/port) under heavy background
// traffic (10ms inter-arrival). Two panels: (a) 99th background FCT,
// (b) 99th QCT (log scale in the paper). Paper result: no collateral damage,
// and DIBS's boost is biggest at small-to-medium buffers.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 12", "Variable buffer size, heavy background",
                    "bg inter-arrival 10ms, 300 qps, degree 40, response 20KB");
  // The 10ms background makes runs ~10x heavier; shorten the window.
  const Time duration = BenchDuration(Time::Millis(200));
  TablePrinter table({"buffer_pkts", "bgfct99_dctcp_ms", "bgfct99_dibs_ms", "qct99_dctcp_ms",
                      "qct99_dibs_ms", "dctcp_done", "dibs_done"});
  table.PrintHeader();
  for (size_t buffer : {1, 5, 10, 25, 40, 100, 200}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    for (ExperimentConfig* c : {&dctcp, &dibs}) {
      c->net.switch_buffer_packets = buffer;
      c->bg_interarrival = Time::Millis(10);
      // ECN marking threshold cannot exceed the buffer itself.
      c->net.ecn_threshold_packets = std::min<size_t>(20, std::max<size_t>(1, buffer / 2));
    }
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    // A 0.00 QCT with 0 completions means no query finished inside the
    // window (the paper's log-scale ~1s points at 1-packet buffers).
    table.PrintRow({TablePrinter::Int(buffer), TablePrinter::Num(row.dctcp_bgfct99),
                    TablePrinter::Num(row.dibs_bgfct99), TablePrinter::Num(row.dctcp_qct99),
                    TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Int(row.dctcp.queries_completed),
                    TablePrinter::Int(row.dibs.queries_completed)});
  }
  return 0;
}
