// Figure 12: very small buffers (1-200 packets/port) under heavy background
// traffic (10ms inter-arrival). Two panels: (a) 99th background FCT,
// (b) 99th QCT (log scale in the paper). Paper result: no collateral damage,
// and DIBS's boost is biggest at small-to-medium buffers.

#include <algorithm>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 12", "Variable buffer size, heavy background",
                    "bg inter-arrival 10ms, 300 qps, degree 40, response 20KB");
  // The 10ms background makes runs ~10x heavier; shorten the window.
  const Time duration = BenchDuration(Time::Millis(200));
  const std::vector<size_t> buffers = {1, 5, 10, 25, 40, 100, 200};

  SweepSpec spec;
  spec.name = "fig12";
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)}}));
  spec.axes.push_back(
      SweepAxis::Of<size_t>("buffer_pkts", buffers, [](ExperimentConfig& c, size_t b) {
        c.net.switch_buffer_packets = b;
        c.bg_interarrival = Time::Millis(10);
        // ECN marking threshold cannot exceed the buffer itself.
        c.net.ecn_threshold_packets = std::min<size_t>(20, std::max<size_t>(1, b / 2));
      }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"buffer_pkts", "bgfct99_dctcp_ms", "bgfct99_dibs_ms", "qct99_dctcp_ms",
                      "qct99_dibs_ms", "dctcp_done", "dibs_done"});
  table.PrintHeader();
  for (size_t buffer : buffers) {
    const std::string b = std::to_string(buffer);
    const RunRecord& dctcp =
        FindRecord(records, {{"scheme", "dctcp"}, {"buffer_pkts", b}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"buffer_pkts", b}});
    // A 0.00 QCT with 0 completions means no query finished inside the
    // window (the paper's log-scale ~1s points at 1-packet buffers).
    table.PrintRow({TablePrinter::Int(buffer), TablePrinter::Num(dctcp.result.bg_fct99_ms),
                    TablePrinter::Num(dibs.result.bg_fct99_ms),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Int(dctcp.result.queries_completed),
                    TablePrinter::Int(dibs.result.queries_completed)});
  }
  return 0;
}
