// §6 ablation: DIBS vs the alternative buffer-sharing / load-spreading
// mechanisms the paper compares against in Related Work.
//  * Ethernet flow control (hop-by-hop pause): lossless, but backpressure
//    stalls whole links — innocent traffic suffers head-of-line blocking,
//    and the XOFF/XON watermarks need tuning; DIBS has no parameters.
//  * Packet-level ECMP (spraying): spreads load across equal-cost paths, but
//    "cannot provide succor" for incast — the destination's last hop is the
//    bottleneck no matter how packets reach the pod.
// DIBS redirects only the overflow, only where it appears.

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Sec 6 (ablation)", "DIBS vs Ethernet flow control vs packet spraying",
                    "defaults: 300 qps, degree 40, response 20KB, bg 120ms");
  const Time duration = BenchDuration(Time::Millis(300));

  struct Scheme {
    const char* name;
    ExperimentConfig cfg;
  };
  std::vector<Scheme> schemes;

  schemes.push_back({"dctcp (drop)", Standard(DctcpConfig(), duration)});

  ExperimentConfig pfc = Standard(DctcpConfig(), duration);
  pfc.net.pfc_enabled = true;
  pfc.net.pfc_xoff_packets = 80;  // of the 100-packet port budget
  pfc.net.pfc_xon_packets = 40;
  schemes.push_back({"dctcp+pfc", pfc});

  ExperimentConfig spray = Standard(DctcpConfig(), duration);
  spray.net.packet_level_ecmp = true;
  spray.tcp.dupack_threshold = 10;  // spraying reorders; same remedy as DIBS
  schemes.push_back({"dctcp+spray", spray});

  schemes.push_back({"dctcp+dibs", Standard(DibsConfig(), duration)});

  ExperimentConfig both = Standard(DibsConfig(), duration);
  both.net.packet_level_ecmp = true;
  schemes.push_back({"dibs+spray", both});

  TablePrinter table({"scheme", "qct99_ms", "qct50_ms", "bgfct99_ms", "drops", "detours"});
  table.PrintHeader();
  for (const Scheme& s : schemes) {
    const ScenarioResult r = RunScenario(s.cfg);
    table.PrintRow({s.name, TablePrinter::Num(r.qct99_ms), TablePrinter::Num(r.qct.p50),
                    TablePrinter::Num(r.bg_fct99_ms), TablePrinter::Int(r.drops),
                    TablePrinter::Int(r.detours)});
  }
  std::cout << "\n(expected: pfc and dibs are both lossless — pfc can even win outright when\n"
               " the incast is the only hotspot, at the cost of watermark tuning and\n"
               " whole-link pauses; spraying alone still drops at the last hop)\n";
  return 0;
}
