// Figure 13: limiting detours via the packet TTL (12-255) under heavy
// background traffic. Paper result: DIBS QCT improves with higher TTL (low
// TTLs force TTL-expiry drops); TTL barely affects background FCT; DCTCP is
// TTL-insensitive.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 13", "Variable max TTL",
                    "bg inter-arrival 10ms, 300 qps, degree 40, response 20KB; "
                    "network diameter 6");
  const Time duration = BenchDuration(Time::Millis(200));
  const std::vector<int> ttls = {12, 24, 36, 48, 255};

  SweepSpec spec;
  spec.name = "fig13";
  spec.seed = BenchSeed();
  SweepAxis ttl_axis = SweepAxis::Of<int>("ttl", ttls, [duration](ExperimentConfig& c, int ttl) {
    c = Standard(DibsConfig(), duration);
    c.bg_interarrival = Time::Millis(10);
    c.net.initial_ttl = static_cast<uint8_t>(ttl);
    c.tcp.initial_ttl = static_cast<uint8_t>(ttl);
  });
  spec.axes.push_back(std::move(ttl_axis));

  // DCTCP reference (TTL-independent; shown flat in the paper): one extra
  // run sharing the worker pool with the TTL sweep.
  std::vector<RunSpec> runs = spec.Expand();
  RunSpec dctcp_run;
  dctcp_run.config = Standard(DctcpConfig(), duration);
  dctcp_run.config.bg_interarrival = Time::Millis(10);
  dctcp_run.points = {{"scheme", "dctcp"}};
  runs.push_back(std::move(dctcp_run));

  const std::vector<RunRecord> records = RunBenchRuns(spec.name, std::move(runs));
  const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}});

  TablePrinter table({"ttl", "qct99_dibs_ms", "bgfct99_dibs_ms", "ttl_drops",
                      "qct99_dctcp_ms", "bgfct99_dctcp_ms"});
  table.PrintHeader();
  for (int ttl : ttls) {
    const RunRecord& dibs = FindRecord(records, {{"ttl", std::to_string(ttl)}});
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(ttl)),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(dibs.result.bg_fct99_ms),
                    TablePrinter::Int(dibs.result.ttl_drops),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dctcp.result.bg_fct99_ms)});
  }
  return 0;
}
