// Figure 13: limiting detours via the packet TTL (12-255) under heavy
// background traffic. Paper result: DIBS QCT improves with higher TTL (low
// TTLs force TTL-expiry drops); TTL barely affects background FCT; DCTCP is
// TTL-insensitive.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 13", "Variable max TTL",
                    "bg inter-arrival 10ms, 300 qps, degree 40, response 20KB; "
                    "network diameter 6");
  const Time duration = BenchDuration(Time::Millis(200));

  // DCTCP reference (TTL-independent; shown flat in the paper).
  ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
  dctcp.bg_interarrival = Time::Millis(10);
  const ScenarioResult dctcp_r = RunScenario(dctcp);

  TablePrinter table({"ttl", "qct99_dibs_ms", "bgfct99_dibs_ms", "ttl_drops",
                      "qct99_dctcp_ms", "bgfct99_dctcp_ms"});
  table.PrintHeader();
  for (int ttl : {12, 24, 36, 48, 255}) {
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dibs.bg_interarrival = Time::Millis(10);
    dibs.net.initial_ttl = static_cast<uint8_t>(ttl);
    dibs.tcp.initial_ttl = static_cast<uint8_t>(ttl);
    const ScenarioResult r = RunScenario(dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(ttl)),
                    TablePrinter::Num(r.qct99_ms), TablePrinter::Num(r.bg_fct99_ms),
                    TablePrinter::Int(r.ttl_drops), TablePrinter::Num(dctcp_r.qct99_ms),
                    TablePrinter::Num(dctcp_r.bg_fct99_ms)});
  }
  return 0;
}
