// Host-parameter ablation: §4's two reordering remedies (fast retransmit
// disabled vs dup-ACK threshold >= 10) plus minRTO sensitivity. The two
// remedies measure equivalently; a standard threshold of 3 fires spuriously
// on detour reordering (thousands of useless retransmissions), and a larger
// minRTO trades spurious-timeout tail latency against recovery speed for
// real loss (which DIBS makes rare).

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Ablation", "DIBS host parameters: dup-ACK threshold x minRTO",
                    "defaults: 300 qps, degree 40, response 20KB, bg 120ms");
  const Time duration = BenchDuration(Time::Millis(300));

  struct Point {
    uint32_t dupack;  // 0 = fast retransmit disabled (paper's primary choice)
    int64_t minrto_ms;
  };
  const std::vector<Point> points = {{0, 10}, {0, 50},  {3, 10},
                                     {10, 10}, {10, 50}, {20, 10}};

  SweepSpec spec;
  spec.name = "ablation_host_params";
  spec.base = Standard(DibsConfig(), duration);
  SweepAxis axis;
  axis.name = "host_params";
  for (const Point& p : points) {
    axis.values.push_back({"d" + std::to_string(p.dupack) + "_rto" +
                               std::to_string(p.minrto_ms),
                           [p](ExperimentConfig& c) {
                             c.tcp.dupack_threshold = p.dupack;
                             c.tcp.min_rto = Time::Millis(p.minrto_ms);
                           }});
  }
  spec.axes.push_back(std::move(axis));

  // Records come back in axis order, so records[i] is points[i].
  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"dupack_thresh", "minrto_ms", "qct99_ms", "qct50_ms", "bgfct99_ms",
                      "timeouts", "retransmits"});
  table.PrintHeader();
  for (size_t i = 0; i < points.size(); ++i) {
    const ScenarioResult& r = records[i].result;
    table.PrintRow({TablePrinter::Int(points[i].dupack),
                    TablePrinter::Int(static_cast<uint64_t>(points[i].minrto_ms)),
                    TablePrinter::Num(r.qct99_ms), TablePrinter::Num(r.qct.p50),
                    TablePrinter::Num(r.bg_fct99_ms), TablePrinter::Int(r.timeouts),
                    TablePrinter::Int(r.retransmits)});
  }
  std::cout << "\n(dupack=3 fires spuriously on detour reordering; dupack=0 — the paper's\n"
               " and our default — and dupack>=10 behave equivalently; minRTO sets the\n"
               " spurious-timeout tail)\n";
  return 0;
}
