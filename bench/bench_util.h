// Shared plumbing for the figure benches: standard run durations, the
// DCTCP-vs-DIBS comparison row, and CDF printing.
//
// Durations are scaled down from the paper's runs so that the whole bench
// suite finishes in minutes on one machine; EXPERIMENTS.md records how the
// measured shapes compare to the paper's. Override the duration with the
// DIBS_BENCH_DURATION_MS environment variable for longer, tighter runs.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/harness/table.h"

namespace dibs {
namespace bench {

// Default simulated duration for one figure point.
inline Time BenchDuration(Time fallback = Time::Millis(400)) {
  if (const char* env = std::getenv("DIBS_BENCH_DURATION_MS"); env != nullptr) {
    return Time::Millis(std::atoll(env));
  }
  return fallback;
}

// Applies the shared run-control settings to a preset config.
inline ExperimentConfig Standard(ExperimentConfig c, Time duration) {
  c.duration = duration;
  c.drain = Time::Millis(150);
  c.seed = 1;
  return c;
}

// Prints a (value, cumulative fraction) CDF as rows.
inline void PrintCdf(const std::string& series_name,
                     const std::vector<std::pair<double, double>>& cdf,
                     const std::string& value_label) {
  TablePrinter table({"series", value_label, "cum_frac"}, {24, 0, 0});
  table.PrintHeader();
  for (const auto& [value, frac] : cdf) {
    table.PrintRow({series_name, TablePrinter::Num(value, 4), TablePrinter::Num(frac, 3)});
  }
}

// The standard two-scheme comparison row most figures print.
struct ComparisonRow {
  double dctcp_qct99 = 0;
  double dibs_qct99 = 0;
  double dctcp_bgfct99 = 0;
  double dibs_bgfct99 = 0;
  ScenarioResult dctcp;
  ScenarioResult dibs;
};

inline ComparisonRow CompareSchemes(ExperimentConfig base_dctcp, ExperimentConfig base_dibs) {
  ComparisonRow row;
  row.dctcp = RunScenario(base_dctcp);
  row.dibs = RunScenario(base_dibs);
  row.dctcp_qct99 = row.dctcp.qct99_ms;
  row.dibs_qct99 = row.dibs.qct99_ms;
  row.dctcp_bgfct99 = row.dctcp.bg_fct99_ms;
  row.dibs_bgfct99 = row.dibs.bg_fct99_ms;
  return row;
}

}  // namespace bench
}  // namespace dibs

#endif  // BENCH_BENCH_UTIL_H_
