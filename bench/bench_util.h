// Shared plumbing for the figure benches: standard run durations, sweep
// execution through the src/exp engine, the DCTCP-vs-DIBS comparison row,
// and CDF printing.
//
// Durations are scaled down from the paper's runs so that the whole bench
// suite finishes in minutes on one machine; EXPERIMENTS.md records how the
// measured shapes compare to the paper's. Environment knobs:
//   DIBS_BENCH_DURATION_MS  simulated window per figure point
//   DIBS_BENCH_SEED         base seed for every run (default 1)
//   DIBS_JOBS               sweep worker threads (default: hardware cores)
//   DIBS_RUN_TIMEOUT_SEC    per-run wall-clock cap (default: none)
//   DIBS_SWEEP_JSONL        append every RunRecord as JSONL to this file
//   DIBS_SWEEP_CSV          append every RunRecord as CSV to this file
//   DIBS_REQUIRE_OK         abort if any run fails or times out; CI sets it
//                           so DIBS_VALIDATE violations inside sweep runs
//                           (surfaced as failed records) fail the pipeline
//   DIBS_STRICT             softer than DIBS_REQUIRE_OK: let the sweep run
//                           to completion (retries, isolation, degraded
//                           rows and all), then exit nonzero if any row is
//                           not ok
//   DIBS_JOURNAL            append-only run journal; with DIBS_RESUME=1 a
//                           restarted bench skips rows journaled as ok
//   DIBS_ISOLATE            "process" forks every run (crash containment +
//                           hard watchdog); default in-process threads
//   DIBS_MAX_ATTEMPTS       retries per failed/timeout/crashed row
//   DIBS_RETRY_BACKOFF_MS   initial retry backoff (exponential, bounded)
//   DIBS_WATCHDOG_GRACE_SEC SIGKILL slack past DIBS_RUN_TIMEOUT_SEC
// (see EXPERIMENTS.md "Resumable sweeps")

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/env.h"
#include "src/exp/result_sink.h"
#include "src/exp/sweep_engine.h"
#include "src/exp/sweep_spec.h"
#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/harness/table.h"
#include "src/util/logging.h"

namespace dibs {
namespace bench {

// Default simulated duration for one figure point.
inline Time BenchDuration(Time fallback = Time::Millis(400)) {
  return Time::Millis(env::Int("DIBS_BENCH_DURATION_MS",
                               static_cast<int64_t>(fallback.ToMillis()), 1,
                               86400000));
}

// Base seed for every figure run; replication r of a sweep uses seed + r.
inline uint64_t BenchSeed() {
  return static_cast<uint64_t>(env::Int("DIBS_BENCH_SEED", 1, 0));
}

// Applies the shared run-control settings to a preset config.
inline ExperimentConfig Standard(ExperimentConfig c, Time duration) {
  c.duration = duration;
  c.drain = Time::Millis(150);
  c.seed = BenchSeed();
  return c;
}

inline SweepOptions BenchSweepOptions() {
  SweepOptions opts;
  opts.run_timeout_sec = env::Double("DIBS_RUN_TIMEOUT_SEC", opts.run_timeout_sec, 0, 86400);
  return opts;
}

// Runs an explicit run list through the sweep engine with the bench-wide
// options and optional JSONL/CSV export, returning records in list order.
inline std::vector<RunRecord> RunBenchRuns(const std::string& name,
                                           std::vector<RunSpec> runs) {
  std::vector<std::unique_ptr<ResultSink>> owned;
  std::vector<ResultSink*> sinks;
  std::ofstream jsonl_file;
  std::ofstream csv_file;
  if (const char* path = std::getenv("DIBS_SWEEP_JSONL"); path != nullptr) {
    jsonl_file.open(path, std::ios::app);
    owned.push_back(std::make_unique<JsonlSink>(jsonl_file));
    sinks.push_back(owned.back().get());
  }
  if (const char* path = std::getenv("DIBS_SWEEP_CSV"); path != nullptr) {
    csv_file.open(path, std::ios::app);
    owned.push_back(std::make_unique<CsvSink>(csv_file));
    sinks.push_back(owned.back().get());
  }
  MultiSink multi(std::move(sinks));
  SweepEngine engine(BenchSweepOptions());
  std::vector<RunRecord> records = engine.RunAll(name, std::move(runs), &multi);
  if (env::Flag("DIBS_REQUIRE_OK", false)) {
    for (const RunRecord& r : records) {
      if (r.status != RunStatus::kOk) {
        DIBS_LOG(kFatal) << "DIBS_REQUIRE_OK: sweep '" << name << "' run " << r.index
                         << " finished " << RunStatusName(r.status) << ": " << r.error;
      }
    }
  }
  if (env::Flag("DIBS_STRICT", false)) {
    const SweepSummary& s = engine.summary();
    if (!s.AllOk()) {
      DIBS_LOG(kError) << "DIBS_STRICT: sweep '" << name << "' finished with "
                       << s.ok << "/" << s.total << " ok (failed " << s.failed
                       << ", timeout " << s.timeout << ", crashed " << s.crashed
                       << ", quarantined " << s.quarantined << "); exiting nonzero";
      std::exit(1);
    }
  }
  return records;
}

// Expands a declarative spec (applying the bench seed) and runs it.
inline std::vector<RunRecord> RunBenchSweep(SweepSpec spec) {
  spec.seed = BenchSeed();
  return RunBenchRuns(spec.name, spec.Expand());
}

// The usual first axis: scheme presets replacing the whole config.
inline SweepAxis SchemeAxis(std::vector<std::pair<std::string, ExperimentConfig>> schemes) {
  SweepAxis axis;
  axis.name = "scheme";
  for (auto& [label, config] : schemes) {
    axis.values.push_back({label, [config](ExperimentConfig& c) { c = config; }});
  }
  return axis;
}

// Table cell for a value computed from `rec.result`: the value when the run
// completed, an explicit "<failed>"/"<timeout>"/"<crashed>"/"<quarantined>"
// marker otherwise — degraded sweeps render every row, never silently print
// a zeroed result as if it were real data.
inline std::string ResultCell(const RunRecord& rec, std::string value) {
  if (rec.status == RunStatus::kOk) {
    return value;
  }
  return "<" + std::string(RunStatusName(rec.status)) + ">";
}

// First record whose coordinates include every given (axis, value) pair.
inline const RunRecord& FindRecord(const std::vector<RunRecord>& records,
                                   const std::vector<AxisPoint>& match) {
  for (const RunRecord& r : records) {
    bool all = true;
    for (const AxisPoint& want : match) {
      bool found = false;
      for (const AxisPoint& have : r.points) {
        if (have == want) {
          found = true;
          break;
        }
      }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all) {
      return r;
    }
  }
  DIBS_LOG(kFatal) << "no sweep record matches the requested axis values";
  return records.front();  // unreachable
}

// Prints a (value, cumulative fraction) CDF as rows.
inline void PrintCdf(const std::string& series_name,
                     const std::vector<std::pair<double, double>>& cdf,
                     const std::string& value_label) {
  TablePrinter table({"series", value_label, "cum_frac"}, {24, 0, 0});
  table.PrintHeader();
  for (const auto& [value, frac] : cdf) {
    table.PrintRow({series_name, TablePrinter::Num(value, 4), TablePrinter::Num(frac, 3)});
  }
}

// The standard two-scheme comparison row most figures print.
struct ComparisonRow {
  double dctcp_qct99 = 0;
  double dibs_qct99 = 0;
  double dctcp_bgfct99 = 0;
  double dibs_bgfct99 = 0;
  ScenarioResult dctcp;
  ScenarioResult dibs;
};

inline ComparisonRow MakeComparisonRow(const ScenarioResult& dctcp,
                                       const ScenarioResult& dibs) {
  ComparisonRow row;
  row.dctcp = dctcp;
  row.dibs = dibs;
  row.dctcp_qct99 = dctcp.qct99_ms;
  row.dibs_qct99 = dibs.qct99_ms;
  row.dctcp_bgfct99 = dctcp.bg_fct99_ms;
  row.dibs_bgfct99 = dibs.bg_fct99_ms;
  return row;
}

// Runs N (dctcp, dibs) config pairs through the engine — both schemes of all
// rows execute concurrently — and returns one ComparisonRow per pair.
inline std::vector<ComparisonRow> CompareSchemesSweep(
    const std::string& name,
    const std::vector<std::pair<ExperimentConfig, ExperimentConfig>>& pairs) {
  std::vector<RunSpec> runs;
  runs.reserve(pairs.size() * 2);
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (const auto& [scheme, config] :
         {std::pair<std::string, const ExperimentConfig&>{"dctcp", pairs[i].first},
          std::pair<std::string, const ExperimentConfig&>{"dibs", pairs[i].second}}) {
      RunSpec run;
      run.config = config;
      run.points = {{"scheme", scheme}, {"pair", std::to_string(i)}};
      runs.push_back(std::move(run));
    }
  }
  const std::vector<RunRecord> records = RunBenchRuns(name, std::move(runs));
  std::vector<ComparisonRow> rows;
  rows.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    rows.push_back(MakeComparisonRow(records[2 * i].result, records[2 * i + 1].result));
  }
  return rows;
}

inline ComparisonRow CompareSchemes(ExperimentConfig base_dctcp, ExperimentConfig base_dibs) {
  return CompareSchemesSweep("compare", {{std::move(base_dctcp), std::move(base_dibs)}})
      .front();
}

}  // namespace bench
}  // namespace dibs

#endif  // BENCH_BENCH_UTIL_H_
