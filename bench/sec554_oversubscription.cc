// §5.5.4: oversubscribed fabrics. Inter-switch links are slowed by 2/3/4x,
// giving 1:4 / 1:9 / 1:16 oversubscription. Paper result: DIBS's ~20ms QCT
// advantage persists at every oversubscription level (the receiver's last
// hop stays the bottleneck), with background FCT unaffected.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Sec 5.5.4", "Oversubscription",
                    "fabric rate = host rate / factor; defaults otherwise");
  const Time duration = BenchDuration();
  TablePrinter table({"oversub", "factor", "qct99_dctcp_ms", "qct99_dibs_ms",
                      "bgfct99_dctcp_ms", "bgfct99_dibs_ms"});
  table.PrintHeader();
  for (double factor : {1.0, 2.0, 3.0, 4.0}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.oversubscription = factor;
    dibs.oversubscription = factor;
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    const int oversub = static_cast<int>(factor * factor);
    table.PrintRow({"1:" + std::to_string(oversub), TablePrinter::Num(factor, 0),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99)});
  }
  return 0;
}
