// Guard negative test: the collapse watchdog must FIRE on unguarded DIBS in
// its pathological regime and must NOT fire when the overload guard is on.
//
// One extreme-qps cell (fig14's breaking regime, env-tunable) runs twice —
// DCTCP+DIBS with only the watchdog observing, and DCTCP+DIBS+guard — and
// the table reports the watchdog verdict, onset time, breaker activity, and
// goodput side by side. With DIBS_GUARD_EXPECT=1 (CI) the bench exits
// nonzero unless the unguarded run collapsed and the guarded run did not:
// a watchdog that never fires, or a guard that no longer prevents the
// collapse it exists for, both fail the pipeline.
//
// Knobs: DIBS_GUARD_QPS (default 18000 — the first rate where unguarded
// DIBS collapses in-run while the guarded run holds; see EXPERIMENTS.md),
// DIBS_BENCH_DURATION_MS (default 120 here — the watchdog needs enough
// collapse windows to judge).

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  int qps = 18000;
  if (const char* env = std::getenv("DIBS_GUARD_QPS"); env != nullptr) {
    qps = std::atoi(env);
  }
  PrintFigureBanner("Guard negative test",
                    "Collapse watchdog fires unguarded, stays quiet guarded",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  const Time duration = BenchDuration(Time::Millis(120));

  auto watched = [&](ExperimentConfig c) {
    c = Standard(std::move(c), duration);
    c.net.guard.watchdog = true;
    c.qps = qps;
    c.drain = Time::Millis(400);
    return c;
  };

  SweepSpec spec;
  spec.name = "guard_collapse";
  spec.axes.push_back(SchemeAxis({{"dibs", watched(DibsConfig())},
                                  {"dibs-guard", watched(DibsGuardConfig())}}));
  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"scheme", "collapse", "onset_ms", "qct99_ms", "queries_done",
                      "trips", "sup_drops", "clamp_drops", "sup_ms"});
  table.PrintHeader();
  for (const char* scheme : {"dibs", "dibs-guard"}) {
    const RunRecord& rec = FindRecord(records, {{"scheme", scheme}});
    const ScenarioResult& r = rec.result;
    table.PrintRow({scheme, r.collapse_detected ? "YES" : "-",
                    ResultCell(rec, TablePrinter::Num(r.collapse_onset_ms)),
                    ResultCell(rec, TablePrinter::Num(r.qct99_ms)),
                    ResultCell(rec, TablePrinter::Int(r.queries_completed)),
                    ResultCell(rec, TablePrinter::Int(r.guard_trips)),
                    ResultCell(rec, TablePrinter::Int(r.guard_suppressed_drops)),
                    ResultCell(rec, TablePrinter::Int(r.guard_ttl_clamped_drops)),
                    ResultCell(rec, TablePrinter::Num(r.guard_time_suppressed_ms, 1))});
  }

  const char* expect = std::getenv("DIBS_GUARD_EXPECT");
  if (expect == nullptr || expect[0] == '0') {
    return 0;
  }
  const ScenarioResult& unguarded = FindRecord(records, {{"scheme", "dibs"}}).result;
  const ScenarioResult& guarded =
      FindRecord(records, {{"scheme", "dibs-guard"}}).result;
  bool ok = true;
  if (!unguarded.collapse_detected) {
    std::printf("FAIL: watchdog did not flag the unguarded run at %d qps\n", qps);
    ok = false;
  }
  if (guarded.collapse_detected) {
    std::printf("FAIL: guarded run still collapsed at %d qps (onset %.2f ms)\n",
                qps, guarded.collapse_onset_ms);
    ok = false;
  }
  if (guarded.guard_trips == 0) {
    std::printf("FAIL: guarded run never tripped a breaker at %d qps\n", qps);
    ok = false;
  }
  if (ok) {
    std::printf("guard negative test: unguarded collapses at %.2f ms, guarded "
                "holds (%llu breaker trips)  ->  PASS\n",
                unguarded.collapse_onset_ms,
                static_cast<unsigned long long>(guarded.guard_trips));
  }
  return ok ? 0 : 1;
}
