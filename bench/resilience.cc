// Resilience: DCTCP vs DCTCP+DIBS vs DCTCP+DIBS+guard under injected
// failures.
//
// A 40-degree incast (Table 2 defaults) runs while the fault axis breaks the
// fabric around host 0's ToR: a flapping uplink, a lossy uplink, or a full
// ToR crash-and-restart. The fault plan is data inside the ExperimentConfig,
// so fault intensity is just another sweep axis and the whole matrix runs
// through the deterministic sweep engine — same seed, same tables, any
// DIBS_JOBS. Reported per cell: 99th QCT, fault-attributed drops, the full
// drop-reason breakdown, fault-touched flows recovered vs stalled, and the
// slowest repair-to-delivery recovery window.

#include "bench/bench_util.h"
#include "src/fault/fault_plan.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Resilience", "Fault injection around host 0's ToR",
                    "bg inter-arrival 120ms, 300 qps, response 20KB, degree 40");
  const Time duration = BenchDuration();

  // Resolve fault targets against the same topology every run builds (the
  // scheme presets share Table 1/2 topology parameters).
  const ExperimentConfig probe = Standard(DibsConfig(), duration);
  FatTreeOptions topo_opts;
  topo_opts.k = probe.fat_tree_k;
  topo_opts.host_rate_bps = probe.link_rate_bps;
  topo_opts.oversubscription = probe.oversubscription;
  const Topology topo = BuildFatTree(topo_opts);
  const int tor = fault::TorOf(topo, /*h=*/0);
  const std::vector<int> uplinks = fault::SwitchFacingLinks(topo, tor);
  DIBS_CHECK(!uplinks.empty()) << "ToR has no uplinks";
  const int uplink = uplinks.front();

  SweepSpec spec;
  spec.name = "resilience";
  // The guarded variant runs the same fault matrix: faults that push the
  // fabric into a detour storm (flaps, crashes) should trip breakers near
  // the failure instead of letting bounced detours amplify it.
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)},
                                  {"dibs-guard", Standard(DibsGuardConfig(), duration)}}));
  SweepAxis fault_axis;
  fault_axis.name = "fault";
  fault_axis.values.push_back({"healthy", [](ExperimentConfig&) {}});
  fault_axis.values.push_back({"uplink-flap", [=](ExperimentConfig& c) {
                                 // Two down/up cycles starting 1/5 into the
                                 // run, each down and up for duration/10.
                                 c.faults.LinkFlap(uplink, duration / 5, duration / 10,
                                                   duration / 10, /*cycles=*/2);
                               }});
  fault_axis.values.push_back({"uplink-lossy", [=](ExperimentConfig& c) {
                                 c.faults
                                     .DegradeLink(uplink, duration / 5,
                                                  /*loss_probability=*/0.05,
                                                  /*extra_jitter=*/Time::Micros(20))
                                     .RestoreLink(uplink, (duration * 4) / 5);
                               }});
  fault_axis.values.push_back({"tor-crash", [=](ExperimentConfig& c) {
                                 c.faults.SwitchCrash(tor, (duration * 2) / 5)
                                     .SwitchRestart(tor, (duration * 7) / 10);
                               }});
  spec.axes.push_back(fault_axis);

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"fault", "scheme", "qct99_ms", "fault_drops", "flows_recovered",
                      "flows_stalled", "recovery_ms_max", "drops_by_reason"},
                     {14, 12, 0, 0, 0, 0, 0, 66});
  table.PrintHeader();
  for (const char* fault : {"healthy", "uplink-flap", "uplink-lossy", "tor-crash"}) {
    for (const char* scheme : {"dctcp", "dibs", "dibs-guard"}) {
      const RunRecord& rec =
          FindRecord(records, {{"scheme", scheme}, {"fault", fault}});
      const ScenarioResult& r = rec.result;
      table.PrintRow({fault, scheme, ResultCell(rec, TablePrinter::Num(r.qct99_ms)),
                      ResultCell(rec, TablePrinter::Int(r.fault_drops)),
                      ResultCell(rec, TablePrinter::Int(r.fault_flows_recovered)),
                      ResultCell(rec, TablePrinter::Int(r.fault_flows_stalled)),
                      ResultCell(rec, TablePrinter::Num(r.fault_recovery_ms_max)),
                      ResultCell(rec, FormatDropBreakdown(r.drops_by_reason))});
    }
  }
  return 0;
}
