// Figure 10: impact of query response size.
// Sweep the per-responder response 20-50KB. Paper result: DIBS's QCT edge
// shrinks as responses grow (21ms at 20KB down to 6ms at 50KB) because big
// detour swarms start triggering spurious timeouts; background damage grows
// slightly (1.2ms -> 4.4ms).

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 10", "Variable response size",
                    "bg inter-arrival 120ms, incast degree 40, 300 qps");
  const Time duration = BenchDuration();
  const std::vector<int> sizes_kb = {20, 30, 40, 50};

  SweepSpec spec;
  spec.name = "fig10";
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)}}));
  spec.axes.push_back(
      SweepAxis::Of<int>("response_kb", sizes_kb, [](ExperimentConfig& c, int kb) {
        c.response_bytes = static_cast<uint64_t>(kb) * 1000;
      }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"response_kb", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dctcp_drops", "dibs_drops"});
  table.PrintHeader();
  for (int kb : sizes_kb) {
    const std::string k = std::to_string(kb);
    const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}, {"response_kb", k}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"response_kb", k}});
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(kb)),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(dctcp.result.bg_fct99_ms),
                    TablePrinter::Num(dibs.result.bg_fct99_ms),
                    TablePrinter::Int(dctcp.result.drops),
                    TablePrinter::Int(dibs.result.drops)});
  }
  return 0;
}
