// Figure 10: impact of query response size.
// Sweep the per-responder response 20-50KB. Paper result: DIBS's QCT edge
// shrinks as responses grow (21ms at 20KB down to 6ms at 50KB) because big
// detour swarms start triggering spurious timeouts; background damage grows
// slightly (1.2ms -> 4.4ms).

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 10", "Variable response size",
                    "bg inter-arrival 120ms, incast degree 40, 300 qps");
  const Time duration = BenchDuration();
  TablePrinter table({"response_kb", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dctcp_drops", "dibs_drops"});
  table.PrintHeader();
  for (int kb : {20, 30, 40, 50}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.response_bytes = static_cast<uint64_t>(kb) * 1000;
    dibs.response_bytes = static_cast<uint64_t>(kb) * 1000;
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(kb)),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99),
                    TablePrinter::Int(row.dctcp.drops), TablePrinter::Int(row.dibs.drops)});
  }
  return 0;
}
