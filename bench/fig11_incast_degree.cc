// Figure 11: impact of incast degree.
// Sweep responders-per-query 40-100. Paper result: DIBS's advantage GROWS
// with degree (22ms at 40 -> 33ms at 100) because many-sender bursts are far
// burstier than equal-sized big responses (compare Figure 10's extreme): the
// first-RTT burst is degree * initial-window packets.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 11", "Variable incast degree",
                    "bg inter-arrival 120ms, 300 qps, response 20KB");
  const Time duration = BenchDuration();
  TablePrinter table({"degree", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dibs_p99_detours"});
  table.PrintHeader();
  for (int degree : {40, 60, 80, 100}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.incast_degree = degree;
    dibs.incast_degree = degree;

    const ScenarioResult dctcp_r = RunScenario(dctcp);
    // For DIBS also grab the per-packet detour-count tail (§5.4.4 reports
    // "1% of packets are detoured 40 times or more" at degree 100).
    Scenario dibs_scenario(dibs);
    const ScenarioResult dibs_r = dibs_scenario.Run();
    const double p99_detours = dibs_scenario.detours().DetourCountQuantile(0.99);

    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(degree)),
                    TablePrinter::Num(dctcp_r.qct99_ms), TablePrinter::Num(dibs_r.qct99_ms),
                    TablePrinter::Num(dctcp_r.bg_fct99_ms),
                    TablePrinter::Num(dibs_r.bg_fct99_ms), TablePrinter::Num(p99_detours, 0)});
  }
  return 0;
}
