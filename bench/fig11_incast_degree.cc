// Figure 11: impact of incast degree.
// Sweep responders-per-query 40-100. Paper result: DIBS's advantage GROWS
// with degree (22ms at 40 -> 33ms at 100) because many-sender bursts are far
// burstier than equal-sized big responses (compare Figure 10's extreme): the
// first-RTT burst is degree * initial-window packets.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 11", "Variable incast degree",
                    "bg inter-arrival 120ms, 300 qps, response 20KB");
  const Time duration = BenchDuration();
  const std::vector<int> degrees = {40, 60, 80, 100};

  SweepSpec spec;
  spec.name = "fig11";
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)}}));
  spec.axes.push_back(SweepAxis::Of<int>(
      "degree", degrees, [](ExperimentConfig& c, int d) { c.incast_degree = d; }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"degree", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dibs_p99_detours"});
  table.PrintHeader();
  for (int degree : degrees) {
    const std::string d = std::to_string(degree);
    const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}, {"degree", d}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"degree", d}});
    // The per-packet detour-count tail (§5.4.4 reports "1% of packets are
    // detoured 40 times or more" at degree 100) ships in the ScenarioResult.
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(degree)),
                    ResultCell(dctcp, TablePrinter::Num(dctcp.result.qct99_ms)),
                    ResultCell(dibs, TablePrinter::Num(dibs.result.qct99_ms)),
                    ResultCell(dctcp, TablePrinter::Num(dctcp.result.bg_fct99_ms)),
                    ResultCell(dibs, TablePrinter::Num(dibs.result.bg_fct99_ms)),
                    ResultCell(dibs, TablePrinter::Num(dibs.result.detour_count_p99, 0))});
  }
  return 0;
}
