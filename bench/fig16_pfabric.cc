// Figure 16: DCTCP+DIBS vs pFabric across query rates (300-2000 qps).
// Paper result: (a) pFabric's strict shortest-remaining-first scheduling
// hurts background flows as query load grows, while DIBS stays gentle;
// (b) at high query rates DIBS matches or slightly beats pFabric's 99th QCT
// because pFabric's shallow 24-packet queues drop and retransmit heavily.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 16", "DIBS vs pFabric",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  // Figure 16a's damage shows up on LARGE background flows (pFabric's SRPT
  // scheduling starves them), so report both the short-flow FCT and the
  // all-background-flow FCT tails.
  TablePrinter table({"qps", "qct99_pfabric_ms", "qct99_dibs_ms", "bgfct99short_pf_ms",
                      "bgfct99short_dibs_ms", "bgfct99all_pf_ms", "bgfct99all_dibs_ms"});
  table.PrintHeader();
  for (int qps : {300, 500, 1000, 1500, 2000}) {
    const Time duration = BenchDuration(qps <= 500 ? Time::Millis(400) : Time::Millis(200));
    ExperimentConfig pfabric = Standard(PfabricExperimentConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    pfabric.qps = qps;
    dibs.qps = qps;
    const ScenarioResult pf = RunScenario(pfabric);
    const ScenarioResult db = RunScenario(dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(pf.qct99_ms), TablePrinter::Num(db.qct99_ms),
                    TablePrinter::Num(pf.bg_fct99_ms), TablePrinter::Num(db.bg_fct99_ms),
                    TablePrinter::Num(pf.bg_fct99_all_ms),
                    TablePrinter::Num(db.bg_fct99_all_ms)});
  }
  return 0;
}
