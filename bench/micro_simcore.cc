// Simulator-core micro-benchmarks: event queue throughput, FIB/ECMP lookup,
// queue disciplines, and the end-to-end packet-hop rate through a switch.
// These bound how much simulated traffic the figure benches can afford.

#include <benchmark/benchmark.h>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/net/droptail_queue.h"
#include "src/net/pfabric_queue.h"
#include "src/sim/simulator.h"
#include "src/topo/builders.h"
#include "src/topo/routing.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/trace_bus.h"
#include "src/util/stats_util.h"

namespace dibs {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  Simulator sim;
  int64_t t = 1;
  for (auto _ : state) {
    sim.Schedule(Time::Nanos(t++ % 1000), [] {});
    if (t % 64 == 0) {
      sim.Run();
    }
  }
  sim.Run();
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleAndRun);

void BM_FibCompute(benchmark::State& state) {
  const Topology topo = BuildPaperFatTree();
  for (auto _ : state) {
    const Fib fib = Fib::Compute(topo);
    benchmark::DoNotOptimize(fib.num_nodes());
  }
}
BENCHMARK(BM_FibCompute);

void BM_EcmpLookup(benchmark::State& state) {
  const Topology topo = BuildPaperFatTree();
  const Fib fib = Fib::Compute(topo);
  FlowId flow = 1;
  for (auto _ : state) {
    const uint16_t port = fib.EcmpPort(/*node=*/16, static_cast<HostId>(flow % 128), flow);
    benchmark::DoNotOptimize(port);
    ++flow;
  }
  state.counters["lookups/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EcmpLookup);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  DropTailQueue q(/*capacity=*/128, /*mark=*/20);
  for (auto _ : state) {
    Packet p;
    p.size_bytes = 1500;
    p.ect = true;
    q.Enqueue(std::move(p));
    benchmark::DoNotOptimize(q.Dequeue());
  }
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_PfabricEnqueueDequeue(benchmark::State& state) {
  PfabricQueue q(24);
  int64_t prio = 1;
  for (auto _ : state) {
    Packet p;
    p.size_bytes = 1500;
    p.priority = (prio = prio * 2654435761 % 100000) + 1;
    p.flow = static_cast<FlowId>(prio % 40);
    q.Enqueue(std::move(p));
    if (prio % 2 == 0) {
      benchmark::DoNotOptimize(q.Dequeue());
    }
  }
}
BENCHMARK(BM_PfabricEnqueueDequeue);

void BM_SwitchPacketHop(benchmark::State& state) {
  // End-to-end cost of pushing one packet across the fat-tree (5 switch
  // hops), amortized: events per packet-hop including transmission events.
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  uint64_t batch = 0;
  for (auto _ : state) {
    Packet p;
    p.uid = net.NextPacketUid();
    p.src = static_cast<HostId>(batch % 64);
    p.dst = static_cast<HostId>(127 - batch % 64);
    p.size_bytes = 1500;
    p.ttl = 64;
    p.flow = batch;
    net.host(p.src).Send(std::move(p));
    if (++batch % 32 == 0) {
      sim.Run();
    }
  }
  sim.Run();
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwitchPacketHop);

void BM_SwitchPacketHopTraceFiltered(benchmark::State& state) {
  // Same hop loop with a trace bus attached but filtering everything out
  // (sample=0): the cost of *armed* tracing that emits nothing. This is the
  // price paid per hook call when a user traces one flow out of millions.
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  TraceBus bus;
  TraceFilter filter;
  filter.sample = 0.0;
  bus.SetFilter(filter);
  net.AttachTraceBus(&bus);
  uint64_t batch = 0;
  for (auto _ : state) {
    Packet p;
    p.uid = net.NextPacketUid();
    p.src = static_cast<HostId>(batch % 64);
    p.dst = static_cast<HostId>(127 - batch % 64);
    p.size_bytes = 1500;
    p.ttl = 64;
    p.flow = batch;
    net.host(p.src).Send(std::move(p));
    if (++batch % 32 == 0) {
      sim.Run();
    }
  }
  sim.Run();
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwitchPacketHopTraceFiltered);

void BM_SwitchPacketHopTraceRing(benchmark::State& state) {
  // Same hop loop with full tracing into a flight-recorder ring (pass-all
  // filter): the in-memory cost ceiling, with no file I/O on the hot path.
  Simulator sim;
  Network net(&sim, BuildPaperFatTree(), NetworkConfig{});
  TraceBus bus;
  FlightRecorder ring(/*capacity=*/65536);
  bus.AddSink(&ring);
  net.AttachTraceBus(&bus);
  uint64_t batch = 0;
  for (auto _ : state) {
    Packet p;
    p.uid = net.NextPacketUid();
    p.src = static_cast<HostId>(batch % 64);
    p.dst = static_cast<HostId>(127 - batch % 64);
    p.size_bytes = 1500;
    p.ttl = 64;
    p.flow = batch;
    net.host(p.src).Send(std::move(p));
    if (++batch % 32 == 0) {
      sim.Run();
    }
  }
  sim.Run();
  benchmark::DoNotOptimize(ring.total_events());
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwitchPacketHopTraceRing);

void BM_PercentileOf100k(benchmark::State& state) {
  std::vector<double> values;
  values.reserve(100000);
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 100000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<double>(x % 1000000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Percentile(values, 99));
  }
}
BENCHMARK(BM_PercentileOf100k);

}  // namespace
}  // namespace dibs

BENCHMARK_MAIN();
