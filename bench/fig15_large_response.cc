// Figure 15: large query responses (60-160KB) at a high query rate (2000
// qps). Paper result: unlike the extreme-qps case (Figure 14), DIBS does NOT
// break — large responses take several RTTs, which gives DCTCP's ECN loop
// time to throttle the senders, so detour load stays bounded.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 15", "Large query response sizes",
                    "bg inter-arrival 120ms, incast degree 40, 2000 qps");
  const Time duration = BenchDuration(Time::Millis(100));
  TablePrinter table({"response_kb", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dibs_drops"});
  table.PrintHeader();
  for (int kb : {60, 80, 100, 120, 140, 160}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    for (ExperimentConfig* c : {&dctcp, &dibs}) {
      c->qps = 2000;
      c->response_bytes = static_cast<uint64_t>(kb) * 1000;
      c->drain = Time::Millis(400);
    }
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(kb)),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99),
                    TablePrinter::Int(row.dibs.drops)});
  }
  return 0;
}
