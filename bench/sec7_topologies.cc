// §7 ablation: detouring policy x topology.
// The paper argues random detouring suffices on a fat-tree (ECMP already
// balances load) but topologies with unequal path lengths — JellyFish,
// leaf-spine with few spines, and the degenerate linear chain — should favor
// load-aware detouring. This bench runs the same incast-heavy workload over
// each topology and policy.

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Sec 7 (ablation)", "Detour policy x topology",
                    "scaled incast workload per topology; DCTCP hosts");
  const Time duration = BenchDuration(Time::Millis(250));

  struct TopoPoint {
    const char* name;
    TopologyKind kind;
    int degree;  // scaled to the host count
    double qps;
  };
  const TopoPoint topologies[] = {
      {"fat-tree-k8", TopologyKind::kFatTree, 40, 300},
      {"leaf-spine", TopologyKind::kLeafSpine, 12, 300},   // 32 hosts
      {"jellyfish", TopologyKind::kJellyFish, 12, 300},    // 40 hosts
      {"linear", TopologyKind::kLinear, 12, 1500},         // 16 hosts, worst case
  };

  TablePrinter table({"topology", "policy", "qct99_ms", "qct50_ms", "drops", "detours"});
  table.PrintHeader();
  for (const TopoPoint& t : topologies) {
    for (const char* policy : {"none", "random", "load-aware"}) {
      ExperimentConfig cfg = Standard(DibsConfig(), duration);
      cfg.topology = t.kind;
      cfg.net.detour_policy = policy;
      cfg.incast_degree = t.degree;
      cfg.qps = t.qps;
      cfg.enable_background = false;  // isolate the incast response
      const ScenarioResult r = RunScenario(cfg);
      table.PrintRow({t.name, policy, TablePrinter::Num(r.qct99_ms),
                      TablePrinter::Num(r.qct.p50), TablePrinter::Int(r.drops),
                      TablePrinter::Int(r.detours)});
    }
  }
  std::cout << "\n(paper §7: random ~ load-aware on fat-tree; detouring still functions —\n"
               " bouncing backwards — even on the linear chain)\n";
  return 0;
}
