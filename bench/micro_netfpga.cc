// §5.1 micro-benchmark: the NetFPGA-modeled forward/detour decision.
// The paper's claim is that DIBS adds no processing delay — the decision
// completes in the same pipeline cycle. Here we measure the software model's
// decision throughput and compare against 1GbE line rate for back-to-back
// 64-byte frames (1.488 Mpps): the decision logic must be orders of
// magnitude faster than one packet slot.

#include <benchmark/benchmark.h>

#include "src/hw/click.h"
#include "src/hw/netfpga.h"

namespace dibs {
namespace {

void BM_NetfpgaForwardDecision(benchmark::State& state) {
  netfpga::OutputPortLookup lookup(0b1111'0000, 8);
  uint32_t i = 0;
  for (auto _ : state) {
    // Desired port always available: the reference fast path.
    const auto r = lookup.Decide(1u << (i++ % 4), 0xFF);
    benchmark::DoNotOptimize(r);
  }
  state.counters["decisions/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["x_1GbE_64B_linerate"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1.488e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetfpgaForwardDecision);

void BM_NetfpgaDetourDecision(benchmark::State& state) {
  netfpga::OutputPortLookup lookup(0b1111'0000, 8);
  uint32_t i = 0;
  for (auto _ : state) {
    // Desired ports full; the DIBS stage picks a random switch port.
    const auto r = lookup.Decide(1u << (i++ % 4), 0b1111'0000);
    benchmark::DoNotOptimize(r);
  }
  state.counters["decisions/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetfpgaDetourDecision);

void BM_NetfpgaDropDecision(benchmark::State& state) {
  netfpga::OutputPortLookup lookup(0b1111'0000, 8);
  for (auto _ : state) {
    const auto r = lookup.Decide(0b0000'0001, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NetfpgaDropDecision);

void BM_ClickPipelinePush(benchmark::State& state) {
  click::ClickRouter::Options opts;
  opts.num_ports = 8;
  opts.queue_capacity = 64;
  opts.switch_facing = {false, false, false, false, true, true, true, true};
  opts.dibs_enabled = true;
  opts.route = [](HostId dst) { return static_cast<int>(dst) % 8; };
  click::ClickRouter router(std::move(opts));
  HostId dst = 0;
  for (auto _ : state) {
    Packet p;
    p.dst = dst++ % 8;
    p.size_bytes = 64;
    router.HandlePacket(std::move(p));
    // Drain continuously so queues never saturate.
    benchmark::DoNotOptimize(router.PullFrom(static_cast<int>(dst) % 8));
  }
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClickPipelinePush);

}  // namespace
}  // namespace dibs

BENCHMARK_MAIN();
