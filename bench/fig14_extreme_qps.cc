// Figure 14: where DIBS breaks — extreme query arrival rates (6000-14000
// qps, degree 40, 20KB). Paper result: beyond ~10000 qps detoured packets
// cannot leave the network before new bursts arrive; queues build everywhere
// and DIBS's 99th QCT blows past DCTCP's. Below that, DIBS still wins.
//
// This bench also carries the overload-guard acceptance row: a third scheme
// (DCTCP+DIBS+guard) runs the same sweep with the per-switch circuit
// breaker, adaptive detour TTL, and collapse watchdog enabled. The watchdog
// alone (pure observation) is switched on for the unguarded schemes too, so
// the table can show WHERE unguarded DIBS collapses in-run — and that the
// guarded scheme, at that same qps, neither collapses nor surrenders the
// goodput it held before the overload point.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 14", "Extreme query intensity (where DIBS breaks)",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  // Extreme rates are ~30x the default load: keep the simulated window short
  // — but long enough for the collapse watchdog to judge (10ms windows, peak
  // then three consecutive windows below half of it; the unguarded onset
  // lands around t=90ms at 18000 qps). The axis stops at 18000: that is the
  // detour-amplified collapse band — by 20000 qps even detour-free DCTCP
  // collapses in-run, which measures raw overload, not DIBS's breaking
  // point.
  const Time duration = BenchDuration(Time::Millis(120));
  const std::vector<int> rates = {6000, 8000, 10000, 12000, 14000, 16000, 18000};

  // The watchdog observes every scheme (it cannot change results); only the
  // guard scheme arms the breaker and the adaptive TTL clamp.
  auto watched = [&](ExperimentConfig c) {
    c = Standard(std::move(c), duration);
    c.net.guard.watchdog = true;
    return c;
  };

  SweepSpec spec;
  spec.name = "fig14";
  spec.axes.push_back(SchemeAxis({{"dctcp", watched(DctcpConfig())},
                                  {"dibs", watched(DibsConfig())},
                                  {"dibs-guard", watched(DibsGuardConfig())}}));
  spec.axes.push_back(SweepAxis::Of<int>("qps", rates, [](ExperimentConfig& c, int qps) {
    c.qps = qps;
    // Let in-flight queries finish: at these rates queues drain slowly.
    c.drain = Time::Millis(400);
  }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  // flw_* is goodput in completed-work terms (flows finished): deep in
  // overload the downlinks stay saturated, so raw delivered packets cannot
  // show the collapse — flow completions are what stall.
  TablePrinter table({"qps", "qct99_dctcp_ms", "qct99_dibs_ms", "qct99_guard_ms",
                      "flw_dibs", "flw_guard", "clps_dibs", "clps_guard",
                      "trips", "sup_ms"});
  table.PrintHeader();
  for (int qps : rates) {
    const std::string q = std::to_string(qps);
    const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}, {"qps", q}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"qps", q}});
    const RunRecord& guard = FindRecord(records, {{"scheme", "dibs-guard"}, {"qps", q}});
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(guard.result.qct99_ms),
                    TablePrinter::Int(dibs.result.flows_completed),
                    TablePrinter::Int(guard.result.flows_completed),
                    dibs.result.collapse_detected ? "YES" : "-",
                    guard.result.collapse_detected ? "YES" : "-",
                    TablePrinter::Int(guard.result.guard_trips),
                    TablePrinter::Num(guard.result.guard_time_suppressed_ms, 1)});
  }

  // Acceptance row: at the highest qps where unguarded DIBS collapsed in-run,
  // the guarded scheme must sustain >= 90% of the goodput (completed flows)
  // it held at the last pre-overload point — the highest qps where unguarded
  // DIBS stayed healthy.
  int collapse_qps = 0;
  int pre_overload_qps = 0;
  for (int qps : rates) {
    const RunRecord& dibs =
        FindRecord(records, {{"scheme", "dibs"}, {"qps", std::to_string(qps)}});
    if (dibs.result.collapse_detected) {
      collapse_qps = qps;
    } else if (collapse_qps == 0) {
      pre_overload_qps = qps;
    }
  }
  if (collapse_qps == 0) {
    std::printf("\nguard acceptance: unguarded DIBS never collapsed in-run at these "
                "rates; no retention row to score\n");
    return 0;
  }
  if (pre_overload_qps == 0) {
    pre_overload_qps = rates.front();
  }
  const RunRecord& guard_at_collapse = FindRecord(
      records, {{"scheme", "dibs-guard"}, {"qps", std::to_string(collapse_qps)}});
  const RunRecord& guard_pre = FindRecord(
      records, {{"scheme", "dibs-guard"}, {"qps", std::to_string(pre_overload_qps)}});
  const double retention =
      guard_pre.result.flows_completed == 0
          ? 0.0
          : static_cast<double>(guard_at_collapse.result.flows_completed) /
                static_cast<double>(guard_pre.result.flows_completed);
  std::printf("\nguard acceptance: unguarded DIBS collapses at %d qps "
              "(pre-overload %d qps); guarded goodput retention %.1f%% "
              "(%llu vs %llu flows completed), guarded collapse: %s  ->  %s\n",
              collapse_qps, pre_overload_qps, retention * 100.0,
              static_cast<unsigned long long>(guard_at_collapse.result.flows_completed),
              static_cast<unsigned long long>(guard_pre.result.flows_completed),
              guard_at_collapse.result.collapse_detected ? "YES" : "no",
              retention >= 0.9 && !guard_at_collapse.result.collapse_detected
                  ? "PASS (>=90% sustained, no collapse)"
                  : "FAIL");
  return 0;
}
