// Figure 14: where DIBS breaks — extreme query arrival rates (6000-14000
// qps, degree 40, 20KB). Paper result: beyond ~10000 qps detoured packets
// cannot leave the network before new bursts arrive; queues build everywhere
// and DIBS's 99th QCT blows past DCTCP's. Below that, DIBS still wins.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 14", "Extreme query intensity (where DIBS breaks)",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  // Extreme rates are ~30x the default load: keep the simulated window short.
  const Time duration = BenchDuration(Time::Millis(60));
  TablePrinter table({"qps", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dibs_detour_frac", "dibs_drops"});
  table.PrintHeader();
  for (int qps : {6000, 8000, 10000, 12000, 14000}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.qps = qps;
    dibs.qps = qps;
    // Let in-flight queries finish: at these rates queues drain slowly.
    dctcp.drain = Time::Millis(400);
    dibs.drain = Time::Millis(400);
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99),
                    TablePrinter::Num(row.dibs.detoured_fraction, 3),
                    TablePrinter::Int(row.dibs.drops)});
  }
  return 0;
}
