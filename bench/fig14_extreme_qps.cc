// Figure 14: where DIBS breaks — extreme query arrival rates (6000-14000
// qps, degree 40, 20KB). Paper result: beyond ~10000 qps detoured packets
// cannot leave the network before new bursts arrive; queues build everywhere
// and DIBS's 99th QCT blows past DCTCP's. Below that, DIBS still wins.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 14", "Extreme query intensity (where DIBS breaks)",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  // Extreme rates are ~30x the default load: keep the simulated window short.
  const Time duration = BenchDuration(Time::Millis(60));
  const std::vector<int> rates = {6000, 8000, 10000, 12000, 14000};

  SweepSpec spec;
  spec.name = "fig14";
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)}}));
  spec.axes.push_back(SweepAxis::Of<int>("qps", rates, [](ExperimentConfig& c, int qps) {
    c.qps = qps;
    // Let in-flight queries finish: at these rates queues drain slowly.
    c.drain = Time::Millis(400);
  }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"qps", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dibs_detour_frac", "dibs_drops"});
  table.PrintHeader();
  for (int qps : rates) {
    const std::string q = std::to_string(qps);
    const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}, {"qps", q}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"qps", q}});
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(dctcp.result.bg_fct99_ms),
                    TablePrinter::Num(dibs.result.bg_fct99_ms),
                    TablePrinter::Num(dibs.result.detoured_fraction, 3),
                    TablePrinter::Int(dibs.result.drops)});
  }
  return 0;
}
