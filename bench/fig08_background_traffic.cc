// Figure 8: impact of background traffic intensity.
// Sweep the background inter-arrival time 10-120ms at the default query load
// (300 qps, degree 40, 20KB) and report the 99th-percentile QCT and short-
// background-flow FCT for DCTCP vs DCTCP+DIBS. Paper result: DIBS cuts 99th
// QCT by ~20ms with <2ms of collateral FCT damage at every intensity.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 8", "Variable background traffic",
                    "incast degree 40, response 20KB, 300 qps; K=8 fat-tree");
  const Time duration = BenchDuration();
  TablePrinter table({"bg_interarrival_ms", "qct99_dctcp_ms", "qct99_dibs_ms",
                      "bgfct99_dctcp_ms", "bgfct99_dibs_ms", "dibs_drops", "dctcp_drops"});
  table.PrintHeader();
  for (int ms : {10, 20, 40, 80, 120}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.bg_interarrival = Time::Millis(ms);
    dibs.bg_interarrival = Time::Millis(ms);
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(ms)),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99),
                    TablePrinter::Int(row.dibs.drops), TablePrinter::Int(row.dctcp.drops)});
  }
  return 0;
}
