// Figure 9: impact of query arrival rate.
// Sweep 300-2000 qps at default background (120ms inter-arrival). Paper
// result: DIBS improves 99th QCT by ~20ms throughout; at 2000 qps DIBS even
// improves background FCT because DCTCP alone starts dropping.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 9", "Variable query arrival rate",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  TablePrinter table({"qps", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dctcp_drops", "dibs_drops", "detour_frac"});
  table.PrintHeader();
  for (int qps : {300, 500, 1000, 1500, 2000}) {
    // Heavier query rates cost proportionally more wall time; shrink the
    // simulated window to keep the sweep fast while retaining >=60 queries.
    const Time duration = BenchDuration(qps <= 500 ? Time::Millis(400) : Time::Millis(200));
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.qps = qps;
    dibs.qps = qps;
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(row.dctcp_qct99), TablePrinter::Num(row.dibs_qct99),
                    TablePrinter::Num(row.dctcp_bgfct99), TablePrinter::Num(row.dibs_bgfct99),
                    TablePrinter::Int(row.dctcp.drops), TablePrinter::Int(row.dibs.drops),
                    TablePrinter::Num(row.dibs.detoured_fraction, 3)});
  }
  return 0;
}
