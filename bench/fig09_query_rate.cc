// Figure 9: impact of query arrival rate.
// Sweep 300-2000 qps at default background (120ms inter-arrival). Paper
// result: DIBS improves 99th QCT by ~20ms throughout; at 2000 qps DIBS even
// improves background FCT because DCTCP alone starts dropping.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 9", "Variable query arrival rate",
                    "bg inter-arrival 120ms, incast degree 40, response 20KB");
  const std::vector<int> rates = {300, 500, 1000, 1500, 2000};

  SweepSpec spec;
  spec.name = "fig09";
  spec.axes.push_back(SchemeAxis({{"dctcp", DctcpConfig()}, {"dibs", DibsConfig()}}));
  spec.axes.push_back(SweepAxis::Of<int>("qps", rates, [](ExperimentConfig& c, int qps) {
    // Heavier query rates cost proportionally more wall time; shrink the
    // simulated window to keep the sweep fast while retaining >=60 queries.
    const Time duration = BenchDuration(qps <= 500 ? Time::Millis(400) : Time::Millis(200));
    c = Standard(c, duration);
    c.qps = qps;
  }));

  const std::vector<RunRecord> records = RunBenchSweep(std::move(spec));

  TablePrinter table({"qps", "qct99_dctcp_ms", "qct99_dibs_ms", "bgfct99_dctcp_ms",
                      "bgfct99_dibs_ms", "dctcp_drops", "dibs_drops", "detour_frac"});
  table.PrintHeader();
  for (int qps : rates) {
    const std::string q = std::to_string(qps);
    const RunRecord& dctcp = FindRecord(records, {{"scheme", "dctcp"}, {"qps", q}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"qps", q}});
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(qps)),
                    TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(dctcp.result.bg_fct99_ms),
                    TablePrinter::Num(dibs.result.bg_fct99_ms),
                    TablePrinter::Int(dctcp.result.drops),
                    TablePrinter::Int(dibs.result.drops),
                    TablePrinter::Num(dibs.result.detoured_fraction, 3)});
  }
  return 0;
}
