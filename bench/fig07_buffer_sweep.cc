// Figure 7: 99th-percentile QCT vs switch buffer size (25-700 packets/port),
// DCTCP vs DCTCP+DIBS vs DCTCP with infinite buffers. Paper result: DIBS
// tracks the infinite-buffer ideal even at small buffers, while plain DCTCP
// degrades badly (log-scale QCT) as buffers shrink.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 7", "QCT vs switch buffer size",
                    "defaults: 300 qps, degree 40, response 20KB, bg 120ms");
  const Time duration = BenchDuration();
  const std::vector<size_t> buffers = {25, 100, 300, 500, 700};

  SweepSpec spec;
  spec.name = "fig07";
  spec.seed = BenchSeed();
  spec.axes.push_back(SchemeAxis({{"dctcp", Standard(DctcpConfig(), duration)},
                                  {"dibs", Standard(DibsConfig(), duration)}}));
  spec.axes.push_back(SweepAxis::Of<size_t>(
      "buffer_pkts", buffers,
      [](ExperimentConfig& c, size_t b) { c.net.switch_buffer_packets = b; }));

  // The infinite-buffer reference is buffer-size independent: one extra run
  // alongside the matrix so it shares the worker pool.
  std::vector<RunSpec> runs = spec.Expand();
  RunSpec inf;
  inf.config = Standard(InfiniteBufferConfig(), duration);
  inf.points = {{"scheme", "inf"}};
  runs.push_back(std::move(inf));

  const std::vector<RunRecord> records = RunBenchRuns(spec.name, std::move(runs));
  const RunRecord& infinite = FindRecord(records, {{"scheme", "inf"}});

  TablePrinter table({"buffer_pkts", "qct99_dctcp_ms", "qct99_dibs_ms", "qct99_inf_ms",
                      "dctcp_drops", "dibs_drops"});
  table.PrintHeader();
  for (size_t buffer : buffers) {
    const std::string b = std::to_string(buffer);
    const RunRecord& dctcp =
        FindRecord(records, {{"scheme", "dctcp"}, {"buffer_pkts", b}});
    const RunRecord& dibs = FindRecord(records, {{"scheme", "dibs"}, {"buffer_pkts", b}});
    table.PrintRow({TablePrinter::Int(buffer), TablePrinter::Num(dctcp.result.qct99_ms),
                    TablePrinter::Num(dibs.result.qct99_ms),
                    TablePrinter::Num(infinite.result.qct99_ms),
                    TablePrinter::Int(dctcp.result.drops),
                    TablePrinter::Int(dibs.result.drops)});
  }
  return 0;
}
