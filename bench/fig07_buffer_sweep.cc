// Figure 7: 99th-percentile QCT vs switch buffer size (25-700 packets/port),
// DCTCP vs DCTCP+DIBS vs DCTCP with infinite buffers. Paper result: DIBS
// tracks the infinite-buffer ideal even at small buffers, while plain DCTCP
// degrades badly (log-scale QCT) as buffers shrink.

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 7", "QCT vs switch buffer size",
                    "defaults: 300 qps, degree 40, response 20KB, bg 120ms");
  const Time duration = BenchDuration();

  // The infinite-buffer reference is buffer-size independent: run once.
  const ScenarioResult infinite = RunScenario(Standard(InfiniteBufferConfig(), duration));

  TablePrinter table({"buffer_pkts", "qct99_dctcp_ms", "qct99_dibs_ms", "qct99_inf_ms",
                      "dctcp_drops", "dibs_drops"});
  table.PrintHeader();
  for (size_t buffer : {25, 100, 300, 500, 700}) {
    ExperimentConfig dctcp = Standard(DctcpConfig(), duration);
    ExperimentConfig dibs = Standard(DibsConfig(), duration);
    dctcp.net.switch_buffer_packets = buffer;
    dibs.net.switch_buffer_packets = buffer;
    const ComparisonRow row = CompareSchemes(dctcp, dibs);
    table.PrintRow({TablePrinter::Int(buffer), TablePrinter::Num(row.dctcp_qct99),
                    TablePrinter::Num(row.dibs_qct99), TablePrinter::Num(infinite.qct99_ms),
                    TablePrinter::Int(row.dctcp.drops), TablePrinter::Int(row.dibs.drops)});
  }
  return 0;
}
