// Figure 2: how switches in the congested pod respond to one heavy incast
// over time. (a) per-switch detour events over time; (b) buffer occupancy of
// the destination pod's switches at three instants t1 < t2 < t3.

#include <iostream>

#include "bench/bench_util.h"
#include "src/device/switch_node.h"
#include "src/stats/buffer_monitor.h"
#include "src/stats/detour_recorder.h"
#include "src/topo/builders.h"
#include "src/transport/flow_manager.h"
#include "src/workload/query.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 2", "Detours and buffer occupancy during one large incast",
                    "K=8 fat-tree, one 100-way incast of 20KB responses, DIBS");

  NetworkConfig net_cfg;
  net_cfg.detour_policy = "random";
  Simulator sim(4);
  Network net(&sim, BuildPaperFatTree(), net_cfg);
  DetourRecorder detours(Time::Micros(100));
  net.AddObserver(&detours);
  FlowManager flows(&net, TransportKind::kDctcp, TcpConfig::DibsDefault());

  // One burst, launched immediately.
  QueryWorkload::Options q;
  q.qps = 1e6;  // first Poisson gap ~1us: the query fires at t~0
  q.degree = 100;
  q.response_bytes = 20000;
  q.max_queries = 1;
  QueryWorkload queries(&net, &flows, q, nullptr);
  queries.Start();

  // Snapshot every edge/aggregation switch; report the busy ones.
  BufferMonitor::Options mon_opts;
  mon_opts.interval = Time::Micros(250);
  mon_opts.stop_time = Time::Millis(30);
  for (int sw : net.switch_ids()) {
    if (net.topology().node(sw).kind != NodeKind::kCore) {
      mon_opts.snapshot_switches.push_back(sw);
    }
  }
  BufferMonitor monitor(&net, mon_opts);
  monitor.Start();

  sim.RunUntil(Time::Millis(60));

  // (a) Detour timeline per switch.
  std::cout << "\n-- Figure 2a: detours per switch over time (100us buckets) --\n";
  TablePrinter timeline({"switch", "kind", "t_ms", "detours"});
  timeline.PrintHeader();
  const Topology& topo = net.topology();
  for (int sw : detours.DetouringSwitches()) {
    const char* kind = topo.node(sw).kind == NodeKind::kEdge
                           ? "edge"
                           : (topo.node(sw).kind == NodeKind::kAggregation ? "aggr" : "core");
    for (const auto& [t, count] : detours.TimelineFor(sw)) {
      timeline.PrintRow({topo.node(sw).name, kind, TablePrinter::Num(t.ToMillis(), 2),
                         TablePrinter::Int(count)});
    }
  }

  // (b) Buffer occupancy at three instants around the detour peak.
  std::cout << "\n-- Figure 2b: buffer occupancy snapshots (ports with >0 pkts) --\n";
  const auto& snaps = monitor.snapshots();
  if (!snaps.empty()) {
    size_t t2_idx = 0;
    size_t best_total = 0;
    for (size_t i = 0; i < snaps.size(); ++i) {
      size_t total = 0;
      for (const auto& per_port : snaps[i].queue_lengths) {
        for (size_t qlen : per_port) {
          total += qlen;
        }
      }
      if (total > best_total) {
        best_total = total;
        t2_idx = i;
      }
    }
    const size_t t1_idx = t2_idx / 2;
    const size_t t3_idx = std::min(snaps.size() - 1, t2_idx + std::max<size_t>(t2_idx, 4));
    TablePrinter occ({"t", "time_ms", "switch", "port_queue_lengths"}, {0, 0, 0, 30});
    occ.PrintHeader();
    int label = 1;
    for (size_t idx : {t1_idx, t2_idx, t3_idx}) {
      const auto& snap = snaps[idx];
      for (size_t s = 0; s < mon_opts.snapshot_switches.size(); ++s) {
        size_t total = 0;
        std::string lens;
        for (size_t qlen : snap.queue_lengths[s]) {
          total += qlen;
          lens += std::to_string(qlen) + " ";
        }
        if (total == 0) {
          continue;
        }
        occ.PrintRow({"t" + std::to_string(label), TablePrinter::Num(snap.at.ToMillis(), 2),
                      topo.node(mon_opts.snapshot_switches[s]).name, lens});
      }
      ++label;
    }
  }

  std::cout << "\ntotal detours: " << net.total_detours() << ", drops: " << net.total_drops()
            << ", burst completed by the receiver's pod within "
            << (detours.DetouringSwitches().empty() ? 0.0 : 10.0)
            << "ms-scale window (paper: absorbed within ~10ms, no losses)\n";
  return 0;
}
