// §5.5.2: Dynamic Buffer Allocation (shared-memory switches).
// Model: per-switch shared pool (~1.7MB = 1133 MTU slots, Arista 7050QX)
// with dynamic-threshold partitioning. Paper result: DBA alone absorbs
// moderate incast (no loss, DIBS never triggers), but extreme incast
// overflows the whole shared memory — DCTCP+DBA drops while DIBS+DBA stays
// lossless and cuts the 99th QCT by ~75%.

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Sec 5.5.2", "Shared buffers with Dynamic Buffer Allocation",
                    "per-switch shared pool 1133 pkts (1.7MB), alpha=1; response 20KB");
  const Time duration = BenchDuration(Time::Millis(200));
  TablePrinter table({"degree", "resp_kb", "scheme", "qct99_ms", "drops", "detours"});
  table.PrintHeader();

  struct Load {
    int degree;
    int resp_kb;
  };
  // Degree 120 x 80KB emulates the paper's ">150 connections" overload (the
  // topology has 127 possible responders; extra bytes stand in for extra
  // connections per server).
  for (const Load& load : {Load{40, 20}, Load{100, 20}, Load{120, 80}}) {
    for (const char* scheme : {"dctcp", "dibs"}) {
      ExperimentConfig cfg =
          Standard(scheme == std::string("dibs") ? DibsConfig() : DctcpConfig(), duration);
      cfg.incast_degree = load.degree;
      cfg.response_bytes = static_cast<uint64_t>(load.resp_kb) * 1000;
      cfg.net.use_shared_buffer = true;
      cfg.net.shared_buffer_packets = 1133;
      cfg.net.shared_buffer_alpha = 1.0;
      cfg.drain = Time::Millis(300);
      const ScenarioResult r = RunScenario(cfg);
      table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(load.degree)),
                      TablePrinter::Int(static_cast<uint64_t>(load.resp_kb)), scheme,
                      TablePrinter::Num(r.qct99_ms), TablePrinter::Int(r.drops),
                      TablePrinter::Int(r.detours)});
    }
  }
  std::cout << "\n(paper: moderate incast -> zero loss and zero detours for both; overload -> "
               "DCTCP+DBA drops, DIBS+DBA lossless with ~75% lower 99th QCT)\n";
  return 0;
}
