// Figure 6: the Click/Emulab testbed incast experiment (§5.2).
// Five servers each send ten simultaneous 32KB flows to the sixth. Three
// switch settings: infinite buffers, 100-packet droptail, 100-packet + DIBS.
// 50 trials each; we report the QCT distribution (a) and the individual
// flow-duration distribution (b). Paper: infinite ~25ms, DIBS ~27ms,
// droptail 26-51ms with ~9% of flows delayed by timeout.

#include <iostream>

#include "bench/bench_util.h"
#include "src/topo/builders.h"
#include "src/transport/flow_manager.h"

using namespace dibs;
using namespace dibs::bench;

namespace {

struct TrialSet {
  std::vector<double> qct_ms;        // one per trial
  std::vector<double> flow_ms;       // one per flow
  uint64_t drops = 0;
  uint64_t timeouts = 0;
};

TrialSet RunTrials(const std::string& policy, size_t buffer, uint32_t dupack, int trials) {
  TrialSet out;
  for (int trial = 0; trial < trials; ++trial) {
    NetworkConfig net_cfg;
    net_cfg.switch_buffer_packets = buffer;
    net_cfg.ecn_threshold_packets = 20;
    net_cfg.detour_policy = policy;
    TcpConfig tcp_cfg;
    tcp_cfg.dupack_threshold = dupack;
    Simulator sim(static_cast<uint64_t>(trial) + 1);
    Network net(&sim, BuildEmulabTestbed(), net_cfg);
    FlowManager flows(&net, TransportKind::kDctcp, tcp_cfg);
    Time last_completion;
    Time first_start = Time::Max();
    uint32_t timeouts = 0;
    // "Simultaneous" senders still skew by microseconds on a real testbed
    // (the paper pre-establishes connections with a modified iperf); without
    // this jitter every drop-tail trial would be bit-identical and the CDFs
    // degenerate to steps.
    Rng jitter(static_cast<uint64_t>(trial) * 7919 + 1);
    for (HostId src = 0; src < 5; ++src) {
      for (int i = 0; i < 10; ++i) {
        const Time start = Time::Micros(jitter.UniformInt(0, 50));
        first_start = std::min(first_start, start);
        sim.ScheduleAt(start, [&flows, &out, &last_completion, &timeouts, src] {
          flows.StartFlow(src, 5, 32000, TrafficClass::kQuery,
                          [&out, &last_completion, &timeouts](const FlowResult& r) {
                            out.flow_ms.push_back(r.fct.ToMillis());
                            last_completion = std::max(last_completion, r.completion_time);
                            timeouts += r.timeouts;
                          });
        });
      }
    }
    sim.Run();
    out.qct_ms.push_back((last_completion - first_start).ToMillis());
    out.drops += net.total_drops();
    out.timeouts += timeouts;
  }
  return out;
}

void PrintSetting(const char* name, const TrialSet& t) {
  std::cout << "  " << name << ": QCT p50=" << TablePrinter::Num(Percentile(t.qct_ms, 50))
            << "ms p99=" << TablePrinter::Num(Percentile(t.qct_ms, 99))
            << "ms max=" << TablePrinter::Num(Percentile(t.qct_ms, 100))
            << "ms | flow p99=" << TablePrinter::Num(Percentile(t.flow_ms, 99))
            << "ms | drops=" << t.drops << " timeouts=" << t.timeouts << "\n";
}

}  // namespace

int main() {
  PrintFigureBanner("Figure 6", "Click testbed incast: QCT and flow-duration CDFs",
                    "Emulab topology, 5 servers x 10 flows x 32KB -> 1 receiver, 50 trials");
  const int trials = 50;
  const TrialSet infinite = RunTrials("none", 0, 3, trials);
  const TrialSet droptail = RunTrials("none", 100, 3, trials);
  const TrialSet detour = RunTrials("random", 100, 0, trials);

  std::cout << "\n-- Summary --\n";
  PrintSetting("InfiniteBuf", infinite);
  PrintSetting("Detour     ", detour);
  PrintSetting("Droptail100", droptail);

  std::cout << "\n-- Figure 6a: query completion time CDF --\n";
  PrintCdf("InfiniteBuf", EmpiricalCdfPoints(infinite.qct_ms, 10), "qct_ms");
  PrintCdf("Detour", EmpiricalCdfPoints(detour.qct_ms, 10), "qct_ms");
  PrintCdf("Droptail100", EmpiricalCdfPoints(droptail.qct_ms, 10), "qct_ms");

  std::cout << "\n-- Figure 6b: individual flow duration CDF --\n";
  PrintCdf("InfiniteBuf", EmpiricalCdfPoints(infinite.flow_ms, 10), "flow_ms");
  PrintCdf("Detour", EmpiricalCdfPoints(detour.flow_ms, 10), "flow_ms");
  PrintCdf("Droptail100", EmpiricalCdfPoints(droptail.flow_ms, 10), "flow_ms");

  std::cout << "\n(paper: infinite ~25ms, DIBS ~27ms, droptail 26-51ms; droptail's tail is "
               "caused by timeouts after drops)\n";
  return 0;
}
