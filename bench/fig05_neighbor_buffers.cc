// Figure 5: when some switch is congested, how much buffer space is free in
// its 1-hop and 2-hop switch neighborhoods? Paper result: nearly 80% of
// neighboring buffers are empty in all but the extreme workload — the
// headroom DIBS borrows.

#include <iostream>

#include "bench/bench_util.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Figure 5", "Free buffer fraction near congested switches",
                    "DCTCP+DIBS, degree 40, response 20KB, bg 120ms");
  struct Point {
    const char* name;
    double qps;
    Time duration;
  };
  const Point points[] = {
      {"baseline (300 qps)", 300, BenchDuration(Time::Millis(300))},
      {"heavy (2000 qps)", 2000, BenchDuration(Time::Millis(150))},
      {"extreme (10000 qps)", 10000, BenchDuration(Time::Millis(60))},
  };

  TablePrinter table({"workload", "hops", "p10_free", "p50_free", "mean_free", "samples"});
  table.PrintHeader();
  for (const Point& p : points) {
    ExperimentConfig cfg = Standard(DibsConfig(), p.duration);
    cfg.qps = p.qps;
    cfg.monitor_buffers = true;
    cfg.buffer_interval = Time::Micros(500);
    const ScenarioResult r = RunScenario(cfg);
    for (int hops = 1; hops <= 2; ++hops) {
      const std::vector<double>& free = hops == 1 ? r.one_hop_free : r.two_hop_free;
      table.PrintRow({p.name, TablePrinter::Int(static_cast<uint64_t>(hops)),
                      TablePrinter::Num(Percentile(free, 10), 3),
                      TablePrinter::Num(Percentile(free, 50), 3),
                      TablePrinter::Num(Mean(free), 3),
                      TablePrinter::Int(free.size())});
    }
  }
  std::cout << "\n(paper: ~80% of neighboring buffers are free except under the extreme load)\n";
  return 0;
}
