// §5.6: fairness among long-lived flows under DIBS.
// 128 hosts split into 64 node-disjoint pairs; N flows per pair in both
// directions (N=16 -> 4096 flows). Paper result: Jain's fairness index stays
// above 0.9 for all N — DIBS does not starve anyone.

#include <iostream>

#include "bench/bench_util.h"
#include "src/workload/long_lived.h"

using namespace dibs;
using namespace dibs::bench;

int main() {
  PrintFigureBanner("Sec 5.6", "Jain fairness of long-lived flows under DIBS",
                    "64 disjoint host pairs, N flows per direction, K=8 fat-tree");
  const Time window = BenchDuration(Time::Millis(80));
  TablePrinter table({"N", "total_flows", "jain_index", "mean_goodput_mbps"});
  table.PrintHeader();
  for (int n : {1, 2, 4, 8, 16}) {
    ExperimentConfig cfg = DibsConfig();
    cfg.enable_background = false;
    cfg.enable_query = false;
    cfg.duration = window;
    cfg.drain = Time::Zero();
    cfg.seed = 2;
    Scenario scenario(cfg);

    LongLivedWorkload::Options opts;
    opts.flows_per_pair = n;
    LongLivedWorkload ll(&scenario.network(), &scenario.flows(), opts);
    ll.Start();
    scenario.sim().RunUntil(window);

    const auto goodputs = ll.MeasureGoodputBps();
    table.PrintRow({TablePrinter::Int(static_cast<uint64_t>(n)),
                    TablePrinter::Int(ll.num_flows()),
                    TablePrinter::Num(ll.FairnessIndex(), 4),
                    TablePrinter::Num(Mean(goodputs) / 1e6, 1)});
  }
  std::cout << "\n(paper: index > 0.9 for every N)\n";
  return 0;
}
