// Incast study on the Click/Emulab testbed topology (§5.2): how the three
// switch settings — infinite buffers, 100-packet droptail, and DIBS — handle
// a classic partition/aggregate burst, with per-flow visibility.

#include <iostream>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/topo/builders.h"
#include "src/transport/flow_manager.h"
#include "src/util/stats_util.h"

using namespace dibs;

namespace {

void RunSetting(const char* name, const std::string& policy, size_t buffer,
                uint32_t dupack_threshold) {
  NetworkConfig net_cfg;
  net_cfg.switch_buffer_packets = buffer;
  net_cfg.ecn_threshold_packets = 20;
  net_cfg.detour_policy = policy;
  TcpConfig tcp_cfg;
  tcp_cfg.dupack_threshold = dupack_threshold;

  Simulator sim(1);
  Network net(&sim, BuildEmulabTestbed(), net_cfg);
  FlowManager flows(&net, TransportKind::kDctcp, tcp_cfg);

  // §5.2: servers 0-4 each send ten simultaneous 32KB flows to server 5.
  std::vector<double> fct_ms;
  Time qct;
  uint32_t timeouts = 0;
  for (HostId src = 0; src < 5; ++src) {
    for (int i = 0; i < 10; ++i) {
      flows.StartFlow(src, 5, 32000, TrafficClass::kQuery,
                      [&](const FlowResult& r) {
                        fct_ms.push_back(r.fct.ToMillis());
                        qct = std::max(qct, r.completion_time);
                        timeouts += r.timeouts;
                      });
    }
  }
  sim.Run();

  const Summary s = Summarize(fct_ms);
  std::cout << name << "  QCT " << qct.ToMillis() << " ms | flow FCT p50 " << s.p50
            << " / p99 " << s.p99 << " ms | drops " << net.total_drops() << " | detours "
            << net.total_detours() << " | timeouts " << timeouts << "\n";
}

}  // namespace

int main() {
  std::cout << "Incast study (Emulab testbed, 5 servers x 10 x 32KB -> server 5)\n\n";
  RunSetting("InfiniteBuf ", "none", /*buffer=*/0, /*dupack=*/3);
  RunSetting("Droptail100 ", "none", 100, 3);
  RunSetting("Detour      ", "random", 100, /*dupack=*/0);
  std::cout << "\nDroptail's QCT tail comes from drops -> 10ms minRTO timeouts; detouring\n"
               "keeps every flow inside the burst's natural drain time (paper Figure 6).\n";
  return 0;
}
