// Figure 1 reproduction: the path of a single packet that DIBS detoured many
// times on its way to a hot destination. Prints the hop-by-hop trace and the
// arc multiset (how often each switch-to-switch arc was traversed), which is
// exactly what the paper's Figure 1 visualizes.

#include <iostream>
#include <map>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/topo/builders.h"
#include "src/transport/flow_manager.h"
#include "src/workload/query.h"

using namespace dibs;

int main() {
  // Small buffers + a 100-way incast make heavy detouring certain.
  NetworkConfig net_cfg;
  net_cfg.detour_policy = "random";
  net_cfg.switch_buffer_packets = 20;
  net_cfg.ecn_threshold_packets = 10;
  net_cfg.trace_packets = true;  // allocate per-packet path traces

  Simulator sim(7);
  Network net(&sim, BuildPaperFatTree(), net_cfg);
  FlowManager flows(&net, TransportKind::kDctcp, TcpConfig::DibsDefault());

  QueryWorkload::Options q;
  q.qps = 50;
  q.degree = 100;
  q.response_bytes = 20000;
  q.max_queries = 3;
  QueryWorkload queries(&net, &flows, q, nullptr);
  queries.Start();

  // Grab the most-detoured packet seen at any host.
  struct TraceGrabber : NetworkObserver {
    uint16_t best_detours = 0;
    Packet best;
    void OnHostDeliver(HostId host, const Packet& p, Time at) override {
      if (p.detour_count > best_detours && p.trace != nullptr) {
        best_detours = p.detour_count;
        best = p;
      }
    }
  } grabber;
  net.AddObserver(&grabber);

  sim.RunUntil(Time::Millis(200));

  if (grabber.best_detours == 0) {
    std::cout << "no packet was detoured — increase the load\n";
    return 1;
  }

  const Packet& p = grabber.best;
  const Topology& topo = net.topology();
  std::cout << "Most-detoured delivered packet: flow " << p.flow << ", seq " << p.seq << ", "
            << p.detour_count << " detours, src host " << p.src << " -> dst host " << p.dst
            << "\n\nHop-by-hop (switch, time, detoured?):\n";
  for (const PathHop& hop : *p.trace) {
    std::cout << "  " << topo.node(hop.node).name << " @ " << hop.at
              << (hop.detoured ? "  [detour]" : "") << "\n";
  }

  // Figure 1 proper: arc traversal counts.
  std::cout << "\nArc multiset (Figure 1's edge weights):\n";
  std::map<std::pair<int, int>, int> arcs;
  for (size_t i = 1; i < p.trace->size(); ++i) {
    arcs[{(*p.trace)[i - 1].node, (*p.trace)[i].node}]++;
  }
  for (const auto& [arc, count] : arcs) {
    std::cout << "  " << topo.node(arc.first).name << " -> " << topo.node(arc.second).name
              << "  x" << count << "\n";
  }
  return 0;
}
