// Figure 1 reproduction: the path of a single packet that DIBS detoured many
// times on its way to a hot destination. Prints the hop-by-hop trace and the
// arc multiset (how often each switch-to-switch arc was traversed), which is
// exactly what the paper's Figure 1 visualizes.
//
// Doubles as the minimal manual-wiring example for the trace subsystem: a
// TraceBus feeding a JourneyBuilder, attached straight to the Network —
// no Scenario, no env vars.

#include <iostream>
#include <map>

#include "src/device/host_node.h"
#include "src/device/network.h"
#include "src/topo/builders.h"
#include "src/trace/journey.h"
#include "src/trace/trace_bus.h"
#include "src/transport/flow_manager.h"
#include "src/workload/query.h"

using namespace dibs;

int main() {
  // Small buffers + a 100-way incast make heavy detouring certain.
  NetworkConfig net_cfg;
  net_cfg.detour_policy = "random";
  net_cfg.switch_buffer_packets = 20;
  net_cfg.ecn_threshold_packets = 10;

  Simulator sim(7);
  Network net(&sim, BuildPaperFatTree(), net_cfg);
  FlowManager flows(&net, TransportKind::kDctcp, TcpConfig::DibsDefault());

  // Reconstruct every packet's journey from the event stream.
  TraceBus bus;
  JourneyBuilder journeys;
  bus.AddSink(&journeys);
  net.AttachTraceBus(&bus);

  QueryWorkload::Options q;
  q.qps = 50;
  q.degree = 100;
  q.response_bytes = 20000;
  q.max_queries = 3;
  QueryWorkload queries(&net, &flows, q, nullptr);
  queries.Start();

  sim.RunUntil(Time::Millis(200));

  // Grab the most-detoured delivered packet.
  const PacketJourney* best = nullptr;
  for (const auto& [uid, j] : journeys.journeys()) {
    if (j.delivered && (best == nullptr || j.detour_count > best->detour_count)) {
      best = &j;
    }
  }
  if (best == nullptr || best->detour_count == 0) {
    std::cout << "no packet was detoured — increase the load\n";
    return 1;
  }

  const Topology& topo = net.topology();
  std::cout << "Most-detoured delivered packet: uid " << best->uid << ", flow "
            << best->flow << ", " << best->detour_count << " detours, src host "
            << best->src << " -> dst host " << best->dst
            << "\n  in network " << best->TotalTime() << " (queueing "
            << best->QueueingTime() << ", wire " << best->WireTime()
            << ", detour overhead " << best->DetourOverhead() << ")"
            << (best->HasLoop() ? ", looped" : "")
            << "\n\nHop-by-hop (node, enqueue time, depth-after, detoured?):\n";
  for (const JourneyHop& hop : best->hops) {
    std::cout << "  " << topo.node(hop.node).name << " port " << hop.port << " @ "
              << hop.enqueue_at << "  depth " << hop.depth_at_enqueue
              << (hop.detoured ? "  [detour]" : "") << "\n";
  }

  // Figure 1 proper: arc traversal counts.
  std::cout << "\nArc multiset (Figure 1's edge weights):\n";
  std::map<std::pair<int, int>, int> arcs;
  for (size_t i = 1; i < best->hops.size(); ++i) {
    arcs[{best->hops[i - 1].node, best->hops[i].node}]++;
  }
  for (const auto& [arc, count] : arcs) {
    std::cout << "  " << topo.node(arc.first).name << " -> " << topo.node(arc.second).name
              << "  x" << count << "\n";
  }
  return 0;
}
