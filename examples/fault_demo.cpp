// Fault injection demo: break the fabric under an incast and watch DIBS
// route and detour around the damage.
//
//   $ ./build/examples/fault_demo
//
// A FaultPlan is plain data inside ExperimentConfig: declare WHAT breaks
// WHEN (links flap, switches crash, optics degrade), and the scenario
// compiles it into simulator events. Same seed, same faults, same tables —
// the whole timeline is reproducible.

#include <iostream>

#include "src/fault/fault_plan.h"
#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/topo/builders.h"

using namespace dibs;

int main() {
  std::cout << "Fault injection: ToR uplink flap + ToR crash during a 40-way incast\n\n";

  for (const bool use_dibs : {false, true}) {
    ExperimentConfig cfg = use_dibs ? DibsConfig() : DctcpConfig();
    cfg.duration = Time::Millis(300);
    cfg.seed = 2024;

    // Resolve targets from the topology the scenario will build — no
    // hard-coded ids. Host 0's ToR loses an uplink twice, then the whole
    // switch crashes and comes back.
    FatTreeOptions topo_opts;
    topo_opts.k = cfg.fat_tree_k;
    topo_opts.host_rate_bps = cfg.link_rate_bps;
    topo_opts.oversubscription = cfg.oversubscription;
    const Topology topo = BuildFatTree(topo_opts);
    const int tor = fault::TorOf(topo, /*h=*/0);
    const int uplink = fault::SwitchFacingLinks(topo, tor).front();

    cfg.faults.LinkFlap(uplink, /*first_down=*/Time::Millis(60), /*down_for=*/Time::Millis(30),
                        /*up_for=*/Time::Millis(30), /*cycles=*/2)
        .SwitchCrash(tor, Time::Millis(200))
        .SwitchRestart(tor, Time::Millis(240));

    const ScenarioResult r = RunScenario(cfg);

    std::cout << (use_dibs ? "DCTCP+DIBS" : "DCTCP     ") << " | 99th QCT " << r.qct99_ms
              << " ms | fault drops " << r.fault_drops << "/" << r.drops << " total | flows "
              << r.fault_flows_recovered << " recovered, " << r.fault_flows_stalled
              << " stalled | drops: " << FormatDropBreakdown(r.drops_by_reason) << "\n";
  }

  std::cout << "\nDead ports drain and blackhole; the live FIB masks them so ECMP re-picks\n"
               "among surviving paths, and DIBS never detours into a down or crashed port.\n"
               "Packets that were already committed to a dead link show up above as\n"
               "fault-* drops — terminal states the conservation ledger accounts for.\n";
  return 0;
}
