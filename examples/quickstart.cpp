// Quickstart: build the paper's network, throw an incast at it, and watch
// DIBS absorb the burst that plain drop-tail would drop.
//
//   $ ./build/examples/quickstart
//
// Walks through the three layers of the public API:
//   1. Topology + Network  — the simulated fabric
//   2. FlowManager         — DCTCP endpoints
//   3. ExperimentConfig / Scenario — the one-call harness the benches use

#include <iostream>

#include "src/harness/config.h"
#include "src/harness/scenario.h"

using namespace dibs;

int main() {
  std::cout << "DIBS quickstart: 40-way incast on a K=8 fat-tree (128 hosts, 1Gbps)\n\n";

  // One knob separates the two runs: the detour policy.
  for (const bool use_dibs : {false, true}) {
    ExperimentConfig cfg = use_dibs ? DibsConfig() : DctcpConfig();

    // Table 1/2 defaults are pre-filled; shrink the run so this demo is
    // instant. 300 queries/s, each: 40 random servers send 20KB responses to
    // one random target. Background traffic from the production distribution
    // fills in around it.
    cfg.duration = Time::Millis(300);
    cfg.seed = 2024;

    const ScenarioResult r = RunScenario(cfg);

    std::cout << (use_dibs ? "DCTCP+DIBS" : "DCTCP     ") << " | 99th QCT "
              << r.qct99_ms << " ms | 99th short-flow FCT " << r.bg_fct99_ms
              << " ms | drops " << r.drops << " | detours " << r.detours << "\n";
  }

  std::cout << "\nDIBS detours excess packets to neighboring switches instead of dropping\n"
               "them, so incast bursts finish without waiting out a 10ms minRTO timeout.\n"
               "Next: examples/detour_trace (Figure 1), examples/incast_study (Figure 6),\n"
               "examples/policy_comparison (Section 7 policies).\n";
  return 0;
}
