// §7 "Other detouring policies": random (the paper's default), load-aware,
// flow-based, and probabilistic detouring on the same incast-heavy workload,
// plus the no-detour baseline. Shows the knobs MakeDetourPolicy exposes and
// that the parameterless random policy is already competitive.

#include <iostream>

#include "src/harness/config.h"
#include "src/harness/scenario.h"
#include "src/harness/table.h"

using namespace dibs;

int main() {
  std::cout << "Detour-policy comparison (K=8 fat-tree, degree 60, 500 qps, 20KB)\n\n";
  TablePrinter table({"policy", "qct99_ms", "bgfct99_ms", "drops", "detours", "detour_frac"});
  table.PrintHeader();
  for (const char* policy : {"none", "random", "load-aware", "flow-based", "probabilistic"}) {
    ExperimentConfig cfg = DibsConfig();
    cfg.net.detour_policy = policy;
    if (std::string(policy) == "none") {
      cfg.tcp = TcpConfig::DctcpDefault();  // keep fast retransmit when dropping
      cfg.label = "DCTCP";
    }
    cfg.incast_degree = 60;
    cfg.qps = 500;
    cfg.duration = Time::Millis(250);
    cfg.seed = 99;
    const ScenarioResult r = RunScenario(cfg);
    table.PrintRow({policy, TablePrinter::Num(r.qct99_ms), TablePrinter::Num(r.bg_fct99_ms),
                    TablePrinter::Int(r.drops), TablePrinter::Int(r.detours),
                    TablePrinter::Num(r.detoured_fraction, 3)});
  }
  std::cout << "\nrandom is the paper's default: parameterless and within noise of the\n"
               "smarter policies on a fat-tree, where ECMP already balances load (§7).\n";
  return 0;
}
